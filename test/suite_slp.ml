(* Tests for the SLP packer (lib/core/slp.ml), the third compilation
   strategy: pinned pack/reject decisions on suite kernels (including
   the schedule gate that drops throughput-profitable packs whose
   insert chains lengthen the critical path), the optimal-mode
   dominance guarantee over greedy pairing, a serial translation-
   validation case for the non-commutative operand-order regression,
   an SLP-vs-scalar output differential over every benchmark kernel on
   both execution engines, and scorecard/remark/report reconciliation. *)

let slp_opts strategy = { Parsimony.Options.default with strategy }

let compile_slp ?(strategy = Parsimony.Options.SlpOptimal)
    (k : Psimdlib.Workload.kernel) =
  let m = Pfrontend.Lower.compile ~name:k.kname k.serial_src in
  let reports = Parsimony.Slp.run_module ~opts:(slp_opts strategy) m in
  (m, reports)

type rollup = {
  packs : int;
  loads : int;
  stores : int;
  rej_cost : int;
  rej_dep : int;
  capped : int;
  saving : float;
}

let rollup (reports : Parsimony.Slp.report list) : rollup =
  List.fold_left
    (fun acc (r : Parsimony.Slp.report) ->
      {
        packs = acc.packs + r.Parsimony.Slp.packs;
        loads = acc.loads + r.Parsimony.Slp.packed_loads;
        stores = acc.stores + r.Parsimony.Slp.packed_stores;
        rej_cost = acc.rej_cost + r.Parsimony.Slp.rejected_cost;
        rej_dep = acc.rej_dep + r.Parsimony.Slp.rejected_dep;
        capped = acc.capped + r.Parsimony.Slp.search_capped;
        saving = acc.saving +. r.Parsimony.Slp.est_saving;
      })
    {
      packs = 0;
      loads = 0;
      stores = 0;
      rej_cost = 0;
      rej_dep = 0;
      capped = 0;
      saving = 0.0;
    }
    reports

let find_kernel name =
  match Psimdlib.Registry.find name with
  | Some k -> k
  | None -> Alcotest.failf "no such kernel %s" name

(* -- pinned pack/reject decisions -- *)

let test_pinned_packs () =
  (* bgra_to_bgr: the 3 surviving channel loads and the 3 interleaved
     stores pack into one vload + one vstore, forwarded directly *)
  let _, reports = compile_slp (find_kernel "bgra_to_bgr") in
  let r = rollup reports in
  Alcotest.(check int) "bgra_to_bgr packs" 2 r.packs;
  Alcotest.(check int) "bgra_to_bgr load packs" 1 r.loads;
  Alcotest.(check int) "bgra_to_bgr store packs" 1 r.stores;
  (* stretch_gray_2x2 duplicates one pixel into adjacent cells: two
     store packs whose value columns are splats *)
  let _, reports = compile_slp (find_kernel "stretch_gray_2x2") in
  let r = rollup reports in
  Alcotest.(check int) "stretch_gray_2x2 packs" 2 r.packs;
  Alcotest.(check int) "stretch_gray_2x2 store packs" 2 r.stores;
  (* copy_u8 is loop-carried with one access per iteration: nothing
     adjacent within a block, so SLP must leave it untouched *)
  let _, reports = compile_slp (find_kernel "copy_u8") in
  Alcotest.(check int) "copy_u8 packs" 0 (rollup reports).packs

let test_schedule_gate_rejects () =
  (* interleave_uv's store pair needs an insert-chain formation from two
     unrelated loads: profitable by reciprocal throughput alone, but the
     serialized splat+insert+vstore chain lengthens the critical path,
     and the machine charges max(Σ rthr, path).  The schedule gate must
     reject it — this exact case regressed the kernel 23% before the
     gate existed. *)
  let _, reports = compile_slp (find_kernel "interleave_uv") in
  let r = rollup reports in
  Alcotest.(check int) "interleave_uv packs" 0 r.packs;
  Alcotest.(check bool) "rejection recorded as cost" true (r.rej_cost >= 1)

(* -- optimal-mode dominance: the goSLP-style global pairing is never
   worse than greedy under the cost model, and strictly better where
   greedy's maximal-first chunking commits to a pack the schedule gate
   then drops -- *)

let test_optimal_dominates_greedy () =
  List.iter
    (fun (k : Psimdlib.Workload.kernel) ->
      let _, greedy = compile_slp ~strategy:Parsimony.Options.SlpGreedy k in
      let _, optimal = compile_slp ~strategy:Parsimony.Options.SlpOptimal k in
      let gs = (rollup greedy).saving and os = (rollup optimal).saving in
      if os < gs then
        Alcotest.failf "%s: optimal saving %.2f < greedy %.2f" k.kname os gs)
    Psimdlib.Registry.all

let test_optimal_strictly_better_somewhere () =
  (* gray_to_bgra: greedy packs the maximal 4-wide store run, which the
     schedule gate drops; optimal also has the narrower windows and
     keeps a profitable one *)
  let k = find_kernel "gray_to_bgra" in
  let _, greedy = compile_slp ~strategy:Parsimony.Options.SlpGreedy k in
  let _, optimal = compile_slp ~strategy:Parsimony.Options.SlpOptimal k in
  Alcotest.(check int) "greedy finds nothing" 0 (rollup greedy).packs;
  Alcotest.(check bool) "optimal packs the narrower window" true
    ((rollup optimal).packs >= 1)

(* -- serial translation validation: the bounded equivalence prover on
   the packed serial function.  The store pair below is the minimized
   signature of a real miscompile this suite caught: a stateful operand
   rewrite relied on constructor-argument evaluation order and swapped
   the columns of non-commutative packed arithmetic. *)

let sub_pair_src =
  {|
void subs(int32* restrict dst, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    dst[2 * i] = 0 - 15;
    dst[2 * i + 1] = 0 - 2;
  }
}
|}

let test_serial_tv_proves () =
  let m = Pfrontend.Lower.compile ~name:"subs" sub_pair_src in
  let transform m =
    ignore
      (Parsimony.Slp.run_module ~opts:(slp_opts Parsimony.Options.SlpOptimal) m);
    Panalysis.Check.check_module m;
    Parsimony.Simplify.run_module m
  in
  let results = Parsimony.Tv.verify_module ~serial:true ~transform m in
  Alcotest.(check bool) "one function verified" true (List.length results = 1);
  List.iter
    (fun (r : Parsimony.Tv.result) ->
      match r.verdict with
      | Psmt.Equiv.Proved _ -> ()
      | v ->
          Alcotest.failf "%s: expected Proved, got %a" r.vfunc
            Psmt.Equiv.pp_verdict v)
    results

(* -- differential: SLP output equals the scalar reference on every
   benchmark kernel, on both execution engines -- *)

let all_kernels () = Psimdlib.Registry.all @ Pispc.Suite.all

let test_differential engine () =
  List.iter
    (fun (k : Psimdlib.Workload.kernel) ->
      let scalar = Pharness.Runner.run ~engine k Pharness.Runner.Scalar in
      let slp =
        Pharness.Runner.run ~check:true ~engine k
          (Pharness.Runner.SlpImpl (slp_opts Parsimony.Options.SlpOptimal))
      in
      List.iter2
        (fun (name, expected) (name', got) ->
          Alcotest.(check string) "buffer order" name name';
          Array.iteri
            (fun i e ->
              if not (Pharness.Runner.close_enough k.float_tolerance e got.(i))
              then
                Alcotest.failf "%s: slp disagrees with scalar at %s[%d]: %a vs %a"
                  k.kname name i Pmachine.Value.pp e Pmachine.Value.pp got.(i))
            expected)
        scalar.Pharness.Runner.outputs slp.Pharness.Runner.outputs)
    (all_kernels ())

(* -- observability reconciliation: the remark stream, the pass report
   and the scorecard are three views of the same decisions and must
   agree exactly, kernel by kernel -- *)

let test_scorecard_remarks_reconcile () =
  List.iter
    (fun (k : Psimdlib.Workload.kernel) ->
      let m = Pfrontend.Lower.compile ~name:k.kname k.serial_src in
      let reports, remarks =
        Pobs.Remarks.collect Pobs.Remarks.Full (fun () ->
            Parsimony.Slp.run_module
              ~opts:(slp_opts Parsimony.Options.SlpOptimal)
              m)
      in
      Parsimony.Simplify.run_module m;
      let r = rollup reports in
      let count p = List.length (List.filter p remarks) in
      let slp_remark kind (rm : Pobs.Remarks.t) =
        rm.Pobs.Remarks.pass = "slp" && rm.Pobs.Remarks.kind = kind
      in
      Alcotest.(check int)
        (k.kname ^ ": one passed remark per committed pack")
        r.packs
        (count (slp_remark Pobs.Remarks.Passed));
      Alcotest.(check int)
        (k.kname ^ ": one missed remark per rejection")
        (r.rej_cost + r.rej_dep + r.capped)
        (count (slp_remark Pobs.Remarks.Missed));
      let cards = Parsimony.Scorecard.of_module_slp ~reports m in
      let sum f = List.fold_left (fun acc c -> acc + f c) 0 cards in
      Alcotest.(check int)
        (k.kname ^ ": scorecard packs mirror the report")
        r.packs
        (sum (fun c -> c.Parsimony.Scorecard.slp_packs));
      Alcotest.(check int)
        (k.kname ^ ": scorecard rejects mirror the report")
        (r.rej_cost + r.rej_dep)
        (sum (fun c -> c.Parsimony.Scorecard.slp_rejects)))
    Psimdlib.Registry.all

let suites =
  [
    ( "slp",
      [
        Alcotest.test_case "pinned pack decisions" `Quick test_pinned_packs;
        Alcotest.test_case "schedule gate rejects insert chains" `Quick
          test_schedule_gate_rejects;
        Alcotest.test_case "optimal never loses to greedy" `Quick
          test_optimal_dominates_greedy;
        Alcotest.test_case "optimal strictly better on gray_to_bgra" `Quick
          test_optimal_strictly_better_somewhere;
        Alcotest.test_case "serial translation validation proves" `Quick
          test_serial_tv_proves;
        Alcotest.test_case "differential vs scalar (vm)" `Quick
          (test_differential Pmachine.Engine.Vm);
        Alcotest.test_case "differential vs scalar (interp)" `Quick
          (test_differential Pmachine.Engine.Interp);
        Alcotest.test_case "scorecard/remarks/report reconcile" `Quick
          test_scorecard_remarks_reconcile;
      ] );
  ]
