(* Tests for the register-VM execution engine: pinned differential
   equivalence against the tree-walking interpreter over the full
   fig4/fig5 kernel sets (byte-identical buffers AND bit-identical
   cycle totals), frame-pool reuse, and recursive calls. *)

open Pir

let valt = Alcotest.testable Pmachine.Value.pp Pmachine.Value.equal

(* -- differential: VM vs. interpreter over the benchmark suites --

   Both engines consume the same [Cost.schedule_func] schedule and
   charge it in the same order, so everything must match exactly: no
   tolerance anywhere. *)

let check_stats_equal name (a : Pmachine.Interp.stats)
    (b : Pmachine.Interp.stats) =
  let ck what f = Alcotest.(check int) (name ^ ": " ^ what) (f a) (f b) in
  ck "instrs" (fun s -> s.Pmachine.Interp.instrs);
  ck "vector_instrs" (fun s -> s.Pmachine.Interp.vector_instrs);
  ck "gathers" (fun s -> s.Pmachine.Interp.gathers);
  ck "scatters" (fun s -> s.Pmachine.Interp.scatters);
  ck "packed_mem" (fun s -> s.Pmachine.Interp.packed_mem);
  ck "scalar_mem" (fun s -> s.Pmachine.Interp.scalar_mem)

let diff_kernel (k : Psimdlib.Workload.kernel) (impl : Pharness.Runner.impl) =
  let ri = Pharness.Runner.run ~engine:Pmachine.Engine.Interp k impl in
  let rv = Pharness.Runner.run ~engine:Pmachine.Engine.Vm k impl in
  (* cycle totals must be bit-identical, not approximately equal *)
  Alcotest.(check bool)
    (Fmt.str "%s/%s: cycles %.17g = %.17g" k.kname
       (Pharness.Runner.impl_name impl)
       ri.cycles rv.cycles)
    true
    (Int64.equal (Int64.bits_of_float ri.cycles) (Int64.bits_of_float rv.cycles));
  check_stats_equal
    (k.kname ^ "/" ^ Pharness.Runner.impl_name impl)
    ri.stats rv.stats;
  List.iter2
    (fun (name, expected) (name', got) ->
      Alcotest.(check string) "buffer name" name name';
      Array.iteri
        (fun i e ->
          if not (Pmachine.Value.equal e got.(i)) then
            Alcotest.failf "%s/%s: vm diverges from interp at %s[%d]: %a vs %a"
              k.kname
              (Pharness.Runner.impl_name impl)
              name i Pmachine.Value.pp e Pmachine.Value.pp got.(i))
        expected)
    ri.outputs rv.outputs

let test_diff_fig4 () =
  List.iter
    (fun k ->
      diff_kernel k Pharness.Runner.Scalar;
      diff_kernel k
        (Pharness.Runner.ParsimonyImpl Parsimony.Options.default))
    Pispc.Suite.all

let test_diff_fig5 () =
  List.iter
    (fun k ->
      diff_kernel k Pharness.Runner.Scalar;
      diff_kernel k
        (Pharness.Runner.ParsimonyImpl Parsimony.Options.default))
    Psimdlib.Registry.all

(* -- recursion and the frame pool -- *)

(* fact(n) = n <= 1 ? 1 : n * fact(n - 1): self-call, one frame per
   live activation *)
let fact_module () =
  let m = Func.create_module "t" in
  let f = Func.create "fact" ~params:[ (0, Types.i32) ] ~ret:Types.i32 in
  let b = Builder.create f in
  let c = Builder.icmp b Instr.Sle (Instr.Var 0) (Instr.ci32 1) in
  Builder.condbr b c "base" "rec";
  let bb = Builder.add_block b "base" in
  Builder.position b bb;
  Builder.ret b (Some (Instr.ci32 1));
  let br_ = Builder.add_block b "rec" in
  Builder.position b br_;
  let n1 = Builder.sub b (Instr.Var 0) (Instr.ci32 1) in
  let r = Builder.call b Types.i32 "fact" [ n1 ] in
  let p = Builder.mul b (Instr.Var 0) r in
  Builder.ret b (Some p);
  Func.add_func m f;
  m

let test_vm_recursion () =
  let m = fact_module () in
  let vm = Pmachine.Vm.create m in
  Alcotest.check valt "fact 10 on vm" (Pmachine.Value.I 3628800L)
    (Pmachine.Vm.run vm "fact" [ Pmachine.Value.I 10L ]);
  (* and the interpreter agrees, cycles included *)
  let it = Pmachine.Interp.create (fact_module ()) in
  Alcotest.check valt "fact 10 on interp" (Pmachine.Value.I 3628800L)
    (Pmachine.Interp.run it "fact" [ Pmachine.Value.I 10L ]);
  Alcotest.(check bool)
    (Fmt.str "cycles agree: %.17g vs %.17g" (Pmachine.Vm.stats vm).cycles
       it.Pmachine.Interp.stats.cycles)
    true
    ((Pmachine.Vm.stats vm).cycles = it.Pmachine.Interp.stats.cycles);
  Alcotest.(check int) "instrs agree" it.Pmachine.Interp.stats.instrs
    (Pmachine.Vm.stats vm).instrs

let test_vm_frame_pool () =
  let m = fact_module () in
  let vm = Pmachine.Vm.create m in
  ignore (Pmachine.Vm.run vm "fact" [ Pmachine.Value.I 6L ]);
  let code = Pmachine.Vm.code_of vm (Func.find_func m "fact") in
  (* depth-6 recursion parked 6 frames in the pool on the way out *)
  Alcotest.(check int) "pool holds one frame per activation" 6
    (List.length code.Pmachine.Bc.c_pool);
  let frames_before = code.Pmachine.Bc.c_pool in
  Alcotest.check valt "second run (reused frames)" (Pmachine.Value.I 720L)
    (Pmachine.Vm.run vm "fact" [ Pmachine.Value.I 6L ]);
  (* the same frame records came back out of the pool: nothing fresh
     was allocated for the second run *)
  Alcotest.(check int) "pool size stable across runs" 6
    (List.length code.Pmachine.Bc.c_pool);
  List.iter
    (fun fr ->
      Alcotest.(check bool) "frame physically reused" true
        (List.memq fr frames_before))
    code.Pmachine.Bc.c_pool

(* a constant-heavy function keeps producing correct results from a
   pooled frame (constant slots are never clobbered) *)
let test_vm_pool_constants () =
  let m = Func.create_module "t" in
  let f = Func.create "axpb" ~params:[ (0, Types.i32) ] ~ret:Types.i32 in
  let b = Builder.create f in
  let ax = Builder.mul b (Instr.Var 0) (Instr.ci32 7) in
  let r = Builder.add b ax (Instr.ci32 13) in
  Builder.ret b (Some r);
  Func.add_func m f;
  let vm = Pmachine.Vm.create m in
  for i = 0 to 9 do
    Alcotest.check valt
      (Fmt.str "axpb %d" i)
      (Pmachine.Value.I (Int64.of_int ((7 * i) + 13)))
      (Pmachine.Vm.run vm "axpb" [ Pmachine.Value.I (Int64.of_int i) ])
  done

let suites =
  [
    ( "vm",
      [
        Alcotest.test_case "fig4 kernels: vm == interp (bytes and cycles)"
          `Slow test_diff_fig4;
        Alcotest.test_case "fig5 kernels: vm == interp (bytes and cycles)"
          `Slow test_diff_fig5;
        Alcotest.test_case "recursive calls" `Quick test_vm_recursion;
        Alcotest.test_case "frame pool reuse" `Quick test_vm_frame_pool;
        Alcotest.test_case "pooled constants stay intact" `Quick
          test_vm_pool_constants;
      ] );
  ]
