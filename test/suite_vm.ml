(* Tests for the register-VM execution engine: pinned differential
   equivalence against the tree-walking interpreter over the full
   fig4/fig5 kernel sets (byte-identical buffers AND bit-identical
   cycle totals), cross-engine profile parity (per-block attribution
   sums to each engine's own Stats and agrees bit for bit across
   engines), the zero-cost-when-off property of attribution, frame-pool
   reuse, and recursive calls. *)

open Pir

let valt = Alcotest.testable Pmachine.Value.pp Pmachine.Value.equal

(* -- differential: VM vs. interpreter over the benchmark suites --

   Both engines consume the same [Cost.schedule_func] schedule and
   charge it in the same order, so everything must match exactly: no
   tolerance anywhere. *)

let check_stats_equal name (a : Pmachine.Interp.stats)
    (b : Pmachine.Interp.stats) =
  let ck what f = Alcotest.(check int) (name ^ ": " ^ what) (f a) (f b) in
  ck "instrs" (fun s -> s.Pmachine.Interp.instrs);
  ck "vector_instrs" (fun s -> s.Pmachine.Interp.vector_instrs);
  ck "gathers" (fun s -> s.Pmachine.Interp.gathers);
  ck "scatters" (fun s -> s.Pmachine.Interp.scatters);
  ck "packed_mem" (fun s -> s.Pmachine.Interp.packed_mem);
  ck "scalar_mem" (fun s -> s.Pmachine.Interp.scalar_mem)

let diff_kernel (k : Psimdlib.Workload.kernel) (impl : Pharness.Runner.impl) =
  let ri = Pharness.Runner.run ~engine:Pmachine.Engine.Interp k impl in
  let rv = Pharness.Runner.run ~engine:Pmachine.Engine.Vm k impl in
  (* cycle totals must be bit-identical, not approximately equal *)
  Alcotest.(check bool)
    (Fmt.str "%s/%s: cycles %.17g = %.17g" k.kname
       (Pharness.Runner.impl_name impl)
       ri.cycles rv.cycles)
    true
    (Int64.equal (Int64.bits_of_float ri.cycles) (Int64.bits_of_float rv.cycles));
  check_stats_equal
    (k.kname ^ "/" ^ Pharness.Runner.impl_name impl)
    ri.stats rv.stats;
  List.iter2
    (fun (name, expected) (name', got) ->
      Alcotest.(check string) "buffer name" name name';
      Array.iteri
        (fun i e ->
          if not (Pmachine.Value.equal e got.(i)) then
            Alcotest.failf "%s/%s: vm diverges from interp at %s[%d]: %a vs %a"
              k.kname
              (Pharness.Runner.impl_name impl)
              name i Pmachine.Value.pp e Pmachine.Value.pp got.(i))
        expected)
    ri.outputs rv.outputs

let test_diff_fig4 () =
  List.iter
    (fun k ->
      diff_kernel k Pharness.Runner.Scalar;
      diff_kernel k
        (Pharness.Runner.ParsimonyImpl Parsimony.Options.default))
    Pispc.Suite.all

let test_diff_fig5 () =
  List.iter
    (fun k ->
      diff_kernel k Pharness.Runner.Scalar;
      diff_kernel k
        (Pharness.Runner.ParsimonyImpl Parsimony.Options.default))
    Psimdlib.Registry.all

(* -- profile parity: both engines attribute per-block cycles identically --

   Pinned form of the ISSUE acceptance criterion: per-block attribution
   must sum exactly to the engine's own [Stats] totals, and the
   interpreter's and VM's typed profiles must agree bit for bit
   (rows, opcode mix, folded call stacks, totals). *)

let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Execute [m]'s kernel under [kind] with attribution on and return the
   captured profile plus the engine's stats.  The module is built ONCE
   per kernel and shared by both engines: generated block names embed a
   gensym counter, so two independent compiles would not produce
   comparable row keys. *)
let exec_profiled (k : Psimdlib.Workload.kernel) m kind =
  let t = Pmachine.Engine.create ~kind ~profile:true m in
  let mem = Pmachine.Engine.mem t in
  let addrs =
    List.map
      (fun (b : Psimdlib.Workload.buffer) ->
        let esz = Pir.Types.scalar_bytes b.elem in
        (* 64 bytes of slack for strided shuffle over-read, as in Runner *)
        let addr = Pmachine.Memory.alloc mem ((b.len * esz) + 64) in
        for i = 0 to b.len - 1 do
          Pmachine.Memory.store_scalar mem b.elem (addr + (i * esz)) (b.init i)
        done;
        Pmachine.Value.I (Int64.of_int addr))
      k.buffers
  in
  ignore (Pmachine.Engine.run t k.kname (addrs @ k.scalars));
  (Pmachine.Engine.profile t, Pmachine.Engine.stats t)

let profile_kernel (k : Psimdlib.Workload.kernel) (impl : Pharness.Runner.impl)
    =
  let name = k.kname ^ "/" ^ Pharness.Runner.impl_name impl in
  let m = Pharness.Runner.build_module k impl in
  let pi, si = exec_profiled k m Pmachine.Engine.Interp in
  let pv, sv = exec_profiled k m Pmachine.Engine.Vm in
  let sums tag (s : Pmachine.Interp.stats) (p : Pmachine.Profile.t) =
    Alcotest.(check bool)
      (Fmt.str "%s: %s block cycles sum to stats (%.17g vs %.17g)" name tag
         (Pmachine.Profile.sum_cycles p) s.Pmachine.Interp.cycles)
      true
      (feq (Pmachine.Profile.sum_cycles p) s.Pmachine.Interp.cycles);
    Alcotest.(check int)
      (name ^ ": " ^ tag ^ " block instrs sum to stats")
      s.Pmachine.Interp.instrs
      (Pmachine.Profile.sum_instrs p);
    Alcotest.(check bool)
      (name ^ ": " ^ tag ^ " total cycles")
      true
      (feq p.Pmachine.Profile.p_total_cycles s.Pmachine.Interp.cycles)
  in
  sums "interp" si pi;
  sums "vm" sv pv;
  if not (Pmachine.Profile.equal pi pv) then begin
    (* name the first diverging component so a parity break is
       diagnosable from the test output alone *)
    let open Pmachine.Profile in
    let brow b =
      Fmt.str "%s/%s e=%d i=%d c=%.17g" b.pb_func b.pb_block b.pb_entries
        b.pb_instrs b.pb_cycles
    in
    List.iteri
      (fun i bi ->
        match List.nth_opt pv.p_blocks i with
        | Some bv
          when brow bi <> brow bv ->
            Alcotest.failf "%s: block row %d: interp %s, vm %s" name i
              (brow bi) (brow bv)
        | None -> Alcotest.failf "%s: vm profile is missing row %s" name (brow bi)
        | Some _ -> ())
      pi.p_blocks;
    if List.length pv.p_blocks > List.length pi.p_blocks then
      Alcotest.failf "%s: vm profile has %d extra block rows" name
        (List.length pv.p_blocks - List.length pi.p_blocks);
    if pi.p_opcode_mix <> pv.p_opcode_mix then
      Alcotest.failf "%s: opcode mixes differ: interp [%a], vm [%a]" name
        Fmt.(list ~sep:comma (pair ~sep:(any ":") string int))
        pi.p_opcode_mix
        Fmt.(list ~sep:comma (pair ~sep:(any ":") string int))
        pv.p_opcode_mix;
    if not
         (List.equal
            (fun (p, s) (p', s') ->
              p = p' && Int64.bits_of_float s = Int64.bits_of_float s')
            pi.p_folded pv.p_folded)
    then
      Alcotest.failf "%s: folded stacks differ: interp [%a], vm [%a]" name
        Fmt.(list ~sep:comma (pair ~sep:(any " ") string float))
        pi.p_folded
        Fmt.(list ~sep:comma (pair ~sep:(any " ") string float))
        pv.p_folded;
    Alcotest.failf "%s: profile totals differ: interp %.17g/%d, vm %.17g/%d"
      name pi.p_total_cycles pi.p_total_instrs pv.p_total_cycles
      pv.p_total_instrs
  end

let test_profile_fig4 () =
  List.iter
    (fun k ->
      profile_kernel k Pharness.Runner.Scalar;
      profile_kernel k
        (Pharness.Runner.ParsimonyImpl Parsimony.Options.default))
    Pispc.Suite.all

let test_profile_fig5 () =
  List.iter
    (fun k ->
      profile_kernel k Pharness.Runner.Scalar;
      profile_kernel k
        (Pharness.Runner.ParsimonyImpl Parsimony.Options.default))
    Psimdlib.Registry.all

(* Attribution must be observationally free: with profiling disabled the
   VM produces byte-identical buffers and bit-identical cycles to a
   profiled run of the same kernel, and no profile is materialized. *)
let test_profile_off_differential () =
  let check_off_on (k : Psimdlib.Workload.kernel) =
    let impl = Pharness.Runner.ParsimonyImpl Parsimony.Options.default in
    let off = Pharness.Runner.run ~engine:Pmachine.Engine.Vm k impl in
    let on_ =
      Pharness.Runner.run ~engine:Pmachine.Engine.Vm ~profile:true k impl
    in
    Alcotest.(check bool)
      (k.kname ^ ": no profile materialized when off")
      true (off.profile = None);
    Alcotest.(check bool)
      (Fmt.str "%s: cycles unchanged (%.17g vs %.17g)" k.kname off.cycles
         on_.cycles)
      true
      (feq off.cycles on_.cycles);
    check_stats_equal (k.kname ^ " profiling off/on") off.stats on_.stats;
    List.iter2
      (fun (name, e) (name', g) ->
        Alcotest.(check string) "buffer name" name name';
        Array.iteri
          (fun i ev -> Alcotest.check valt (Fmt.str "%s[%d]" name i) ev g.(i))
          e)
      off.outputs on_.outputs;
    match on_.profile with
    | None -> Alcotest.fail (k.kname ^ ": profiled run lost its profile")
    | Some p ->
        Alcotest.(check bool)
          (k.kname ^ ": profile has block rows")
          true
          (p.Pmachine.Profile.p_blocks <> [])
  in
  check_off_on (List.hd Pispc.Suite.all);
  check_off_on (List.hd Psimdlib.Registry.all)

(* -- recursion and the frame pool -- *)

(* fact(n) = n <= 1 ? 1 : n * fact(n - 1): self-call, one frame per
   live activation *)
let fact_module () =
  let m = Func.create_module "t" in
  let f = Func.create "fact" ~params:[ (0, Types.i32) ] ~ret:Types.i32 in
  let b = Builder.create f in
  let c = Builder.icmp b Instr.Sle (Instr.Var 0) (Instr.ci32 1) in
  Builder.condbr b c "base" "rec";
  let bb = Builder.add_block b "base" in
  Builder.position b bb;
  Builder.ret b (Some (Instr.ci32 1));
  let br_ = Builder.add_block b "rec" in
  Builder.position b br_;
  let n1 = Builder.sub b (Instr.Var 0) (Instr.ci32 1) in
  let r = Builder.call b Types.i32 "fact" [ n1 ] in
  let p = Builder.mul b (Instr.Var 0) r in
  Builder.ret b (Some p);
  Func.add_func m f;
  m

let test_vm_recursion () =
  let m = fact_module () in
  let vm = Pmachine.Vm.create m in
  Alcotest.check valt "fact 10 on vm" (Pmachine.Value.I 3628800L)
    (Pmachine.Vm.run vm "fact" [ Pmachine.Value.I 10L ]);
  (* and the interpreter agrees, cycles included *)
  let it = Pmachine.Interp.create (fact_module ()) in
  Alcotest.check valt "fact 10 on interp" (Pmachine.Value.I 3628800L)
    (Pmachine.Interp.run it "fact" [ Pmachine.Value.I 10L ]);
  Alcotest.(check bool)
    (Fmt.str "cycles agree: %.17g vs %.17g" (Pmachine.Vm.stats vm).cycles
       it.Pmachine.Interp.stats.cycles)
    true
    ((Pmachine.Vm.stats vm).cycles = it.Pmachine.Interp.stats.cycles);
  Alcotest.(check int) "instrs agree" it.Pmachine.Interp.stats.instrs
    (Pmachine.Vm.stats vm).instrs

let test_vm_frame_pool () =
  let m = fact_module () in
  let vm = Pmachine.Vm.create m in
  ignore (Pmachine.Vm.run vm "fact" [ Pmachine.Value.I 6L ]);
  let code = Pmachine.Vm.code_of vm (Func.find_func m "fact") in
  (* depth-6 recursion parked 6 frames in the pool on the way out *)
  Alcotest.(check int) "pool holds one frame per activation" 6
    (List.length code.Pmachine.Bc.c_pool);
  let frames_before = code.Pmachine.Bc.c_pool in
  Alcotest.check valt "second run (reused frames)" (Pmachine.Value.I 720L)
    (Pmachine.Vm.run vm "fact" [ Pmachine.Value.I 6L ]);
  (* the same frame records came back out of the pool: nothing fresh
     was allocated for the second run *)
  Alcotest.(check int) "pool size stable across runs" 6
    (List.length code.Pmachine.Bc.c_pool);
  List.iter
    (fun fr ->
      Alcotest.(check bool) "frame physically reused" true
        (List.memq fr frames_before))
    code.Pmachine.Bc.c_pool

(* a constant-heavy function keeps producing correct results from a
   pooled frame (constant slots are never clobbered) *)
let test_vm_pool_constants () =
  let m = Func.create_module "t" in
  let f = Func.create "axpb" ~params:[ (0, Types.i32) ] ~ret:Types.i32 in
  let b = Builder.create f in
  let ax = Builder.mul b (Instr.Var 0) (Instr.ci32 7) in
  let r = Builder.add b ax (Instr.ci32 13) in
  Builder.ret b (Some r);
  Func.add_func m f;
  let vm = Pmachine.Vm.create m in
  for i = 0 to 9 do
    Alcotest.check valt
      (Fmt.str "axpb %d" i)
      (Pmachine.Value.I (Int64.of_int ((7 * i) + 13)))
      (Pmachine.Vm.run vm "axpb" [ Pmachine.Value.I (Int64.of_int i) ])
  done

let suites =
  [
    ( "vm",
      [
        Alcotest.test_case "fig4 kernels: vm == interp (bytes and cycles)"
          `Slow test_diff_fig4;
        Alcotest.test_case "fig5 kernels: vm == interp (bytes and cycles)"
          `Slow test_diff_fig5;
        Alcotest.test_case "fig4 kernels: profile parity (sums and rows)"
          `Slow test_profile_fig4;
        Alcotest.test_case "fig5 kernels: profile parity (sums and rows)"
          `Slow test_profile_fig5;
        Alcotest.test_case "profiling off is observationally free" `Quick
          test_profile_off_differential;
        Alcotest.test_case "recursive calls" `Quick test_vm_recursion;
        Alcotest.test_case "frame pool reuse" `Quick test_vm_frame_pool;
        Alcotest.test_case "pooled constants stay intact" `Quick
          test_vm_pool_constants;
      ] );
  ]
