(* Property-based differential testing, driven by the typed pfuzz
   generator (lib/fuzz).  Each property draws random seeds; a seed fully
   determines a generated PsimC SPMD kernel and its harness inputs, and
   the multi-oracle harness requires every configuration — each
   vectorizer ablation, analysis feedback, autovec, and legalization at
   4/8/16 lanes — to execute bit-identically to the serial SPMD
   reference, with a clean sanitizer.

   The presets split coverage the way the generator does: integer-only
   kernels (arithmetic, divergence, shuffles — the property set of the
   old string-based generator), float kernels (f32 arithmetic, casts,
   mixed conditions), and memory kernels (affine and value-dependent
   gathers, the strided scatter, private arrays, head/tail splits).

   A failing seed is reported with its source; reproduce and shrink it
   with `psimc fuzz --seed N --count 1`. *)

open QCheck

let seed_arb = QCheck.make ~print:string_of_int Gen.(int_bound 1_000_000)

let prop name cfg ~count =
  Test.make ~name ~count seed_arb (fun seed ->
      let case = Pfuzz.Gen.generate ~cfg seed in
      match Pfuzz.Oracle.run (Pfuzz.Oracle.of_case case) with
      | Pfuzz.Oracle.Pass { skipped } ->
          if skipped <> [] then
            QCheck.Test.fail_reportf "seed %d: configs skipped (%s) on:@.%s" seed
              (String.concat ", " (List.map fst skipped))
              case.Pfuzz.Gen.src
          else true
      | Pfuzz.Oracle.Fail { bucket; detail; _ } ->
          QCheck.Test.fail_reportf "seed %d: %s (%s) on:@.%s" seed bucket detail
            case.Pfuzz.Gen.src)

let prop_int =
  prop "random int kernels: reference = all configs" Pfuzz.Gen.int_cfg ~count:50

let prop_float =
  prop "random float kernels: reference = all configs" Pfuzz.Gen.float_cfg
    ~count:40

let prop_mem =
  prop "random memory kernels: reference = all configs" Pfuzz.Gen.mem_cfg
    ~count:40

let prop_full =
  prop "random full kernels: reference = all configs" Pfuzz.Gen.default_cfg
    ~count:40

let suites =
  [
    ( "vectorizer.random",
      [
        QCheck_alcotest.to_alcotest prop_int;
        QCheck_alcotest.to_alcotest prop_float;
        QCheck_alcotest.to_alcotest prop_mem;
        QCheck_alcotest.to_alcotest prop_full;
      ] );
  ]
