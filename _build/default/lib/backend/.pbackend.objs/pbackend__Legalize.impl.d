lib/backend/legalize.ml: Array Fmt Func Hashtbl Instr Int64 List Option Pir Printer Types
