(** Scalar semantics of the math intrinsics.

    The same numeric definitions back the scalar [math.*] calls and the
    vector [sleef.*] / [ispc.*] calls (applied per lane): the two vector
    libraries differ only in cost, which reproduces the paper's finding
    that the Binomial Options gap is a math-library artifact, not an
    SPMD-semantics one (§6). *)

let apply1 op x =
  match op with
  | "sqrt" -> sqrt x
  | "rsqrt" -> 1.0 /. sqrt x
  | "exp" -> exp x
  | "log" -> log x
  | "sin" -> sin x
  | "cos" -> cos x
  | "tan" -> tan x
  | "atan" -> atan x
  | _ -> invalid_arg ("Mathlib.apply1: " ^ op)

let apply2 op x y =
  match op with
  | "pow" -> Float.pow x y
  | "atan2" -> Float.atan2 x y
  | "fmod" -> Float.rem x y
  | _ -> invalid_arg ("Mathlib.apply2: " ^ op)

(** Element scalar kind of a math call name like ["math.pow.f32"]. *)
let scalar_of_name name : Pir.Types.scalar =
  match String.split_on_char '.' name with
  | [ _; _; "f32" ] -> Pir.Types.F32
  | [ _; _; "f64" ] -> Pir.Types.F64
  | _ -> invalid_arg ("Mathlib.scalar_of_name: " ^ name)

(** Evaluate any math-family call ([math.], [sleef.], [ispc.]) on scalar
    or vector arguments. *)
let eval name (args : Value.t list) : Value.t =
  let op = Pir.Intrinsics.math_op name in
  let s = scalar_of_name name in
  let rnd = Value.round_float s in
  match args with
  | [ Value.F x ] -> Value.F (rnd (apply1 op (rnd x)))
  | [ Value.F x; Value.F y ] -> Value.F (rnd (apply2 op (rnd x) (rnd y)))
  | [ Value.VF x ] -> Value.VF (Array.map (fun x -> rnd (apply1 op (rnd x))) x)
  | [ Value.VF x; Value.VF y ] ->
      Value.VF (Array.init (Array.length x) (fun i -> rnd (apply2 op (rnd x.(i)) (rnd y.(i)))))
  | _ ->
      Fmt.invalid_arg "Mathlib.eval %s: bad arguments %a" name
        Fmt.(list ~sep:(any ", ") Value.pp)
        args
