(** Runtime values of the machine model.

    Integers are stored in the canonical zero-extended form of
    [Pir.Ints]; pointers are byte addresses stored as [I].  Vectors store
    per-lane scalars; masks are integer vectors of 0/1. *)

type t =
  | Unit
  | I of int64
  | F of float
  | VI of int64 array
  | VF of float array

let pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | I v -> Fmt.pf ppf "%Ld" v
  | F v -> Fmt.pf ppf "%g" v
  | VI a -> Fmt.pf ppf "<%a>" Fmt.(array ~sep:(any ",") int64) a
  | VF a -> Fmt.pf ppf "<%a>" Fmt.(array ~sep:(any ",") float) a

let to_string v = Fmt.str "%a" pp v

let as_int = function
  | I v -> v
  | v -> Fmt.invalid_arg "Value.as_int: %a" pp v

let as_float = function
  | F v -> v
  | v -> Fmt.invalid_arg "Value.as_float: %a" pp v

let as_ivec = function
  | VI a -> a
  | v -> Fmt.invalid_arg "Value.as_ivec: %a" pp v

let as_fvec = function
  | VF a -> a
  | v -> Fmt.invalid_arg "Value.as_fvec: %a" pp v

let as_bool = function
  | I 0L -> false
  | I _ -> true
  | v -> Fmt.invalid_arg "Value.as_bool: %a" pp v

let of_bool b = I (if b then 1L else 0L)

let lanes = function
  | VI a -> Array.length a
  | VF a -> Array.length a
  | _ -> 1

(** Lane [i] of a vector as a scalar value. *)
let lane v i =
  match v with
  | VI a -> I a.(i)
  | VF a -> F a.(i)
  | _ -> Fmt.invalid_arg "Value.lane: %a" pp v

let set_lane v i x =
  match (v, x) with
  | VI a, I x ->
      let a = Array.copy a in
      a.(i) <- x;
      VI a
  | VF a, F x ->
      let a = Array.copy a in
      a.(i) <- x;
      VF a
  | _ -> Fmt.invalid_arg "Value.set_lane: %a <- %a" pp v pp x

(** Build a vector of element kind [s] from per-lane scalar values. *)
let of_lanes (s : Pir.Types.scalar) xs =
  if Pir.Types.is_float_scalar s then VF (Array.map as_float xs)
  else VI (Array.map as_int xs)

let splat (s : Pir.Types.scalar) n v =
  if Pir.Types.is_float_scalar s then VF (Array.make n (as_float v))
  else VI (Array.make n (as_int v))

(** Default (zero) value of a type. *)
let zero (ty : Pir.Types.t) =
  match ty with
  | Pir.Types.Void -> Unit
  | Pir.Types.Scalar s when Pir.Types.is_float_scalar s -> F 0.
  | Pir.Types.Scalar _ | Pir.Types.Ptr _ -> I 0L
  | Pir.Types.Vec (s, n) when Pir.Types.is_float_scalar s -> VF (Array.make n 0.)
  | Pir.Types.Vec (_, n) -> VI (Array.make n 0L)

let equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | I x, I y -> Int64.equal x y
  | F x, F y -> x = y || (Float.is_nan x && Float.is_nan y)
  | VI x, VI y -> Array.length x = Array.length y && Array.for_all2 Int64.equal x y
  | VF x, VF y ->
      Array.length x = Array.length y
      && Array.for_all2 (fun a b -> a = b || (Float.is_nan a && Float.is_nan b)) x y
  | _ -> false

(** Round a float to the representable precision of [s] ([F32] rounds
    through a 32-bit single). *)
let round_float (s : Pir.Types.scalar) v =
  match s with
  | Pir.Types.F32 -> Int32.float_of_bits (Int32.bits_of_float v)
  | _ -> v
