lib/machine/mathlib.ml: Array Float Fmt Pir String Value
