lib/machine/interp.ml: Array Cost Eval Fmt Int64 List Mathlib Memory Option Pir Value
