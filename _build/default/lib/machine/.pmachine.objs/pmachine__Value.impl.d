lib/machine/value.ml: Array Float Fmt Int32 Int64 Pir
