lib/machine/memory.ml: Array Bytes Fmt Int32 Int64 Pir Value
