lib/machine/cost.ml: Array List Pir String
