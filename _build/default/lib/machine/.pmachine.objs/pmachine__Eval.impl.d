lib/machine/eval.ml: Array Float Fmt Int32 Int64 Pir Value
