(** Execution engines for PIR on the simulated machine.

    Two engines share this module:

    - the single-thread interpreter, which executes ordinary (serial or
      vectorized) functions and accumulates cycle costs from
      [Cost.model]; and

    - the SPMD reference executor, which gives SPMD-annotated scalar
      functions their programming-model semantics (paper §3): a gang of
      conceptually independent threads with weak forward-progress,
      scheduled cooperatively and exchanging data only at explicit
      horizontal operations.  It is the oracle that differential tests
      compare the vectorizer's output against.

    When the interpreter calls a function that still carries an SPMD
    annotation it dispatches one gang to the reference executor, so the
    same driver code runs before and after vectorization. *)

open Pir.Instr

exception Trap of string

let trap fmt = Fmt.kstr (fun s -> raise (Trap s)) fmt

type stats = {
  mutable cycles : float;
  mutable instrs : int;
  mutable vector_instrs : int;
  mutable gathers : int;
  mutable scatters : int;
  mutable packed_mem : int;
  mutable scalar_mem : int;
}

let empty_stats () =
  {
    cycles = 0.0;
    instrs = 0;
    vector_instrs = 0;
    gathers = 0;
    scatters = 0;
    packed_mem = 0;
    scalar_mem = 0;
  }

type t = {
  modul : Pir.Func.modul;
  mem : Memory.t;
  model : Cost.model;
  stats : stats;
  mutable fuel : int;
  count_cost : bool;
}

let create ?(model = Cost.default) ?mem ?(fuel = 2_000_000_000) modul =
  let mem = match mem with Some m -> m | None -> Memory.create () in
  { modul; mem; model; stats = empty_stats (); fuel; count_cost = true }

let charge t c = t.stats.cycles <- t.stats.cycles +. c

let burn t =
  t.fuel <- t.fuel - 1;
  if t.fuel <= 0 then trap "out of fuel (infinite loop?)"

(* -- environments -- *)

type env = { vals : Value.t array }

let make_env (f : Pir.Func.t) args =
  let vals = Array.make (max 1 f.next_id) Value.Unit in
  (try
     List.iter2 (fun (v, _) a -> vals.(v) <- a) f.params args
   with Invalid_argument _ ->
     trap "call to %s with %d args (expected %d)" f.fname (List.length args)
       (List.length f.params));
  { vals }

let get_operand env (o : operand) : Value.t =
  match o with
  | Var v -> env.vals.(v)
  | Const (Cint (_, x)) -> Value.I x
  | Const (Cfloat (s, x)) -> Value.F (Value.round_float s x)
  | Const (Cvec (_, a)) -> Value.VI (Array.copy a)

(* -- memory operation helpers -- *)

let elem_size (f : Pir.Func.t) (p : operand) =
  match Pir.Func.ty_of_operand f p with
  | Pir.Types.Ptr s -> (s, Pir.Types.scalar_bytes s)
  | ty -> trap "memory op through non-pointer (%a)" Pir.Types.pp ty

let active_lanes mask n =
  match mask with
  | None -> Array.make n true
  | Some (Value.VI m) -> Array.map (fun x -> x <> 0L) m
  | Some v -> trap "bad mask %a" Value.pp v

(* -- instruction execution (shared by both engines) --
   [exec_call] handles Call ops; everything else is interpreted here. *)

let rec exec_instr t (f : Pir.Func.t) env ~prev_label ~exec_call (i : instr) :
    Value.t =
  let get = get_operand env in
  let operand_ty = Pir.Func.ty_of_operand f in
  burn t;
  t.stats.instrs <- t.stats.instrs + 1;
  if Pir.Types.is_vector i.ty then
    t.stats.vector_instrs <- t.stats.vector_instrs + 1;
  if t.count_cost then charge t (Cost.of_instr t.model ~operand_ty i);
  match i.op with
  | Alloca (s, n) ->
      Value.I (Int64.of_int (Memory.alloc t.mem (Pir.Types.scalar_bytes s * n)))
  | Load p ->
      let s, _ = elem_size f p in
      t.stats.scalar_mem <- t.stats.scalar_mem + 1;
      Memory.load_scalar t.mem s (Int64.to_int (Value.as_int (get p)))
  | Store (v, p) ->
      let s, _ = elem_size f p in
      t.stats.scalar_mem <- t.stats.scalar_mem + 1;
      Memory.store_scalar t.mem s (Int64.to_int (Value.as_int (get p))) (get v);
      Value.Unit
  | Gep (p, idx) ->
      let _, esz = elem_size f p in
      let base = Value.as_int (get p) in
      let iw = Pir.Types.scalar_bits (Pir.Types.elem (operand_ty idx)) in
      let off = Pir.Ints.sext iw (Value.as_int (get idx)) in
      Value.I (Int64.add base (Int64.mul off (Int64.of_int esz)))
  | VLoad (p, mask) ->
      let s, esz = elem_size f p in
      let n = Pir.Types.lanes i.ty in
      let base = Int64.to_int (Value.as_int (get p)) in
      let act = active_lanes (Option.map get mask) n in
      t.stats.packed_mem <- t.stats.packed_mem + 1;
      Value.of_lanes s
        (Array.init n (fun l ->
             if act.(l) then Memory.load_scalar t.mem s (base + (l * esz))
             else Value.zero (Pir.Types.Scalar s)))
  | VStore (v, p, mask) ->
      let s, esz = elem_size f p in
      let vv = get v in
      let n = Value.lanes vv in
      let base = Int64.to_int (Value.as_int (get p)) in
      let act = active_lanes (Option.map get mask) n in
      t.stats.packed_mem <- t.stats.packed_mem + 1;
      for l = 0 to n - 1 do
        if act.(l) then Memory.store_scalar t.mem s (base + (l * esz)) (Value.lane vv l)
      done;
      Value.Unit
  | Gather (b, idx, mask) ->
      let s, esz = elem_size f b in
      let base = Value.as_int (get b) in
      let idxs = Value.as_ivec (get idx) in
      let iw = Pir.Types.scalar_bits (Pir.Types.elem (operand_ty idx)) in
      let n = Array.length idxs in
      let act = active_lanes (Option.map get mask) n in
      t.stats.gathers <- t.stats.gathers + 1;
      Value.of_lanes s
        (Array.init n (fun l ->
             if act.(l) then
               let addr =
                 Int64.add base (Int64.mul (Pir.Ints.sext iw idxs.(l)) (Int64.of_int esz))
               in
               Memory.load_scalar t.mem s (Int64.to_int addr)
             else Value.zero (Pir.Types.Scalar s)))
  | Scatter (v, b, idx, mask) ->
      let s, esz = elem_size f b in
      let vv = get v in
      let base = Value.as_int (get b) in
      let idxs = Value.as_ivec (get idx) in
      let iw = Pir.Types.scalar_bits (Pir.Types.elem (operand_ty idx)) in
      let n = Array.length idxs in
      let act = active_lanes (Option.map get mask) n in
      t.stats.scatters <- t.stats.scatters + 1;
      for l = 0 to n - 1 do
        if act.(l) then
          let addr =
            Int64.add base (Int64.mul (Pir.Ints.sext iw idxs.(l)) (Int64.of_int esz))
          in
          Memory.store_scalar t.mem s (Int64.to_int addr) (Value.lane vv l)
      done;
      Value.Unit
  | Call (name, args) -> exec_call i name (List.map get args)
  | Phi incoming -> (
      match List.assoc_opt prev_label incoming with
      | Some o -> get o
      | None -> trap "phi in %s has no incoming for predecessor %s" f.fname prev_label)
  | op -> Eval.pure_op ~ty:i.ty ~operand_ty ~get op

(* -- single-thread interpreter -- *)

and exec_func t (f : Pir.Func.t) (args : Value.t list) : Value.t =
  match f.spmd with
  | Some _ -> run_spmd_gang t f args
  | None ->
      let env = make_env f args in
      let frame = Memory.mark t.mem in
      let exec_call _instr name vargs = dispatch_call t name vargs in
      let rec run (block : Pir.Func.block) prev_label =
        (* Phis read their inputs simultaneously: evaluate all first. *)
        let rec split_phis acc = function
          | ({ op = Phi _; _ } as i) :: rest -> split_phis (i :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let phis, body = split_phis [] block.instrs in
        let phi_vals =
          List.map (fun i -> (i.id, exec_instr t f env ~prev_label ~exec_call i)) phis
        in
        List.iter (fun (id, v) -> env.vals.(id) <- v) phi_vals;
        List.iter
          (fun i ->
            let v = exec_instr t f env ~prev_label ~exec_call i in
            if i.ty <> Pir.Types.Void then env.vals.(i.id) <- v)
          body;
        if t.count_cost then charge t (Cost.of_terminator t.model block.term);
        match block.term with
        | Br l -> run (Pir.Func.find_block f l) block.bname
        | CondBr (c, l1, l2) ->
            let target = if Value.as_bool (get_operand env c) then l1 else l2 in
            run (Pir.Func.find_block f target) block.bname
        | Ret None -> Value.Unit
        | Ret (Some o) -> get_operand env o
        | Unreachable -> trap "reached unreachable in %s" f.fname
      in
      let result = run (Pir.Func.entry f) "$entry" in
      Memory.release t.mem frame;
      result

and dispatch_call t name args : Value.t =
  if Pir.Intrinsics.is_math name || Pir.Intrinsics.is_sleef name
     || Pir.Intrinsics.is_ispc name
  then Mathlib.eval name args
  else if Pir.Intrinsics.is_psim name then
    trap "Parsimony intrinsic %s outside SPMD execution" name
  else
    match Pir.Func.find_func_opt t.modul name with
    | Some callee -> exec_func t callee args
    | None -> trap "call to unknown function %s" name

(* -- SPMD reference executor -- *)

(* A logical thread of the gang: its own environment and control
   position; [AtSync] marks a thread parked at a horizontal operation
   with its evaluated arguments. *)
and run_spmd_gang t (f : Pir.Func.t) (args : Value.t list) : Value.t =
  let { Pir.Func.gang_size; partial } =
    match f.spmd with Some s -> s | None -> assert false
  in
  (* calling convention: ... captured params ..., gang_num, num_threads *)
  let gang_num, num_threads =
    match List.rev args with
    | nt :: gn :: _ -> (Value.as_int gn, Value.as_int nt)
    | _ -> trap "SPMD function %s called with too few arguments" f.fname
  in
  let active =
    if partial then
      let rem = Int64.sub num_threads (Int64.mul gang_num (Int64.of_int gang_size)) in
      max 0 (min gang_size (Int64.to_int rem))
    else gang_size
  in
  let module TS = struct
    type status = Running | AtSync of instr * Value.t list | Finished

    type thread = {
      lane : int;
      env : env;
      mutable block : Pir.Func.block;
      mutable idx : int;
      mutable prev : string;
      mutable status : status;
    }
  end in
  let open TS in
  let threads =
    Array.init active (fun lane ->
        {
          lane;
          env = make_env f args;
          block = Pir.Func.entry f;
          idx = 0;
          prev = "$entry";
          status = Running;
        })
  in
  let frame = Memory.mark t.mem in
  (* Step one thread until it parks or finishes.  On block entry the phi
     prefix is evaluated atomically (phis read their inputs
     simultaneously), so [idx] always points past the phis. *)
  let step_thread th =
    let exec_call instr name vargs =
      if Pir.Intrinsics.is_horizontal name then begin
        th.status <- AtSync (instr, vargs);
        Value.Unit
      end
      else if name = Pir.Intrinsics.lane_num then Value.I (Int64.of_int th.lane)
      else dispatch_call t name vargs
    in
    let enter_block name =
      th.prev <- th.block.bname;
      th.block <- Pir.Func.find_block f name;
      let rec phis acc = function
        | ({ op = Phi _; _ } as i) :: rest -> phis (i :: acc) rest
        | _ -> List.rev acc
      in
      let phi_instrs = phis [] th.block.instrs in
      let vals =
        List.map
          (fun i -> (i.id, exec_instr t f th.env ~prev_label:th.prev ~exec_call i))
          phi_instrs
      in
      List.iter (fun (id, v) -> th.env.vals.(id) <- v) vals;
      th.idx <- List.length phi_instrs
    in
    let continue = ref true in
    while !continue && th.status = Running do
      if th.idx < List.length th.block.instrs then begin
        let i = List.nth th.block.instrs th.idx in
        let v = exec_instr t f th.env ~prev_label:th.prev ~exec_call i in
        match th.status with
        | AtSync _ -> () (* parked; do not advance; re-run on wake *)
        | _ ->
            if i.ty <> Pir.Types.Void then th.env.vals.(i.id) <- v;
            th.idx <- th.idx + 1
      end
      else begin
        if t.count_cost then charge t (Cost.of_terminator t.model th.block.term);
        match th.block.term with
        | Br l -> enter_block l
        | CondBr (c, l1, l2) ->
            enter_block (if Value.as_bool (get_operand th.env c) then l1 else l2)
        | Ret _ ->
            th.status <- Finished;
            continue := false
        | Unreachable -> trap "SPMD thread reached unreachable in %s" f.fname
      end
    done
  in
  (* Resume all parked threads with per-lane results of the horizontal
     operation they are parked at. *)
  let resolve_sync () =
    let parked =
      Array.to_list threads
      |> List.filter_map (fun th ->
             match th.status with AtSync (i, args) -> Some (th, i, args) | _ -> None)
    in
    match parked with
    | [] -> ()
    | (_, i0, _) :: _ ->
        if List.exists (fun (_, i, _) -> i.id <> i0.id) parked then
          trap
            "divergent horizontal operation: gang threads synchronized at \
             different call sites in %s"
            f.fname;
        if List.length parked <> Array.length threads then
          trap
            "divergent horizontal operation: only %d of %d threads reached \
             the synchronization in %s (weak forward progress violated)"
            (List.length parked) (Array.length threads) f.fname;
        let name = match i0.op with Call (n, _) -> n | _ -> assert false in
        let results =
          if name = Pir.Intrinsics.gang_sync then
            List.map (fun _ -> Value.Unit) parked
          else if name = Pir.Intrinsics.shuffle then
            (* lane l receives the value contributed by lane idx(l) *)
            let contributions = Array.make gang_size Value.Unit in
            List.iter
              (fun ((th : thread), _, args) ->
                match args with
                | [ v; _ ] -> contributions.(th.lane) <- v
                | _ -> trap "psim.shuffle expects 2 arguments")
              parked;
            List.map
              (fun ((_ : thread), _, args) ->
                match args with
                | [ _; idx ] ->
                    let k = Int64.to_int (Value.as_int idx) land (gang_size - 1) in
                    if k < active then contributions.(k)
                    else Value.zero (Pir.Types.Scalar Pir.Types.I8)
                | _ -> assert false)
              parked
          else if name = Pir.Intrinsics.sad_u8 then
            (* per-8-lane-group sum of absolute differences; every lane of
               a group receives the group's sum (paper §7 abstraction) *)
            let a = Array.make gang_size 0L and b = Array.make gang_size 0L in
            List.iter
              (fun ((th : thread), _, args) ->
                match args with
                | [ x; y ] ->
                    a.(th.lane) <- Value.as_int x;
                    b.(th.lane) <- Value.as_int y
                | _ -> trap "psim.sad_u8 expects 2 arguments")
              parked;
            List.map
              (fun ((th : thread), _, _) ->
                let g = th.lane / 8 in
                let acc = ref 0L in
                for k = 0 to 7 do
                  let l = (g * 8) + k in
                  if l < active then
                    acc := Int64.add !acc (Pir.Ints.abs_diff_u 8 a.(l) b.(l))
                done;
                Value.I !acc)
              parked
          else trap "unknown horizontal operation %s" name
        in
        List.iter2
          (fun ((th : thread), i, _) r ->
            if i.ty <> Pir.Types.Void then th.env.vals.(i.id) <- r;
            th.idx <- th.idx + 1;
            th.status <- Running)
          parked results
  in
  let rec scheduler () =
    let ran = ref false in
    Array.iter
      (fun th ->
        if th.status = Running then begin
          ran := true;
          step_thread th
        end)
      threads;
    let unfinished = Array.exists (fun th -> th.status <> Finished) threads in
    if unfinished then begin
      resolve_sync ();
      if (not !ran) && not (Array.exists (fun th -> th.status = Running) threads)
      then trap "SPMD deadlock in %s" f.fname;
      scheduler ()
    end
  in
  if active > 0 then scheduler ();
  Memory.release t.mem frame;
  Value.Unit

(** Run function [name] with [args]; returns its result. *)
let run t name args = exec_func t (Pir.Func.find_func t.modul name) args
