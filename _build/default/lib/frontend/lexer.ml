(** Hand-written lexer for PsimC. *)

type token =
  | INT of int64
  | FLOAT of float
  | IDENT of string
  | KW of string  (** keywords, including type names *)
  | PUNCT of string
  | EOF

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable tok : token;
  mutable tok_pos : Ast.pos;
}

exception Error of string * Ast.pos

let error lx fmt =
  Fmt.kstr (fun s -> raise (Error (s, { Ast.line = lx.line; col = lx.col }))) fmt

let keywords =
  [
    "void"; "bool"; "true"; "false"; "if"; "else"; "while"; "for"; "break";
    "continue"; "return"; "psim"; "gang_size"; "num_spmd_threads"; "inline";
    "restrict"; "int8"; "int16"; "int32"; "int64"; "uint8"; "uint16";
    "uint32"; "uint64"; "float32"; "float64"; "int"; "uint"; "float";
    "double"; "size_t";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance_char lx =
  (match peek_char lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance_char lx;
      skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
      while peek_char lx <> None && peek_char lx <> Some '\n' do
        advance_char lx
      done;
      skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '*' ->
      advance_char lx;
      advance_char lx;
      let rec close () =
        match peek_char lx with
        | None -> error lx "unterminated comment"
        | Some '*' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/'
          ->
            advance_char lx;
            advance_char lx
        | Some _ ->
            advance_char lx;
            close ()
      in
      close ();
      skip_ws lx
  | _ -> ()

let punct3 = [ "<<="; ">>=" ]
let punct2 =
  [
    "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "+="; "-="; "*="; "/=";
    "%="; "&="; "|="; "^=";
  ]

let lex_number lx =
  let start = lx.pos in
  let hex =
    peek_char lx = Some '0'
    && lx.pos + 1 < String.length lx.src
    && (lx.src.[lx.pos + 1] = 'x' || lx.src.[lx.pos + 1] = 'X')
  in
  if hex then begin
    advance_char lx;
    advance_char lx;
    while
      match peek_char lx with
      | Some c -> is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
      | None -> false
    do
      advance_char lx
    done;
    INT (Int64.of_string (String.sub lx.src start (lx.pos - start)))
  end
  else begin
    while (match peek_char lx with Some c -> is_digit c | None -> false) do
      advance_char lx
    done;
    let is_float = ref false in
    (if
       peek_char lx = Some '.'
       && lx.pos + 1 < String.length lx.src
       && is_digit lx.src.[lx.pos + 1]
     then begin
       is_float := true;
       advance_char lx;
       while (match peek_char lx with Some c -> is_digit c | None -> false) do
         advance_char lx
       done
     end);
    (match peek_char lx with
    | Some ('e' | 'E') ->
        is_float := true;
        advance_char lx;
        (match peek_char lx with
        | Some ('+' | '-') -> advance_char lx
        | _ -> ());
        while (match peek_char lx with Some c -> is_digit c | None -> false) do
          advance_char lx
        done
    | _ -> ());
    let text = String.sub lx.src start (lx.pos - start) in
    (* optional f suffix *)
    match peek_char lx with
    | Some ('f' | 'F') ->
        advance_char lx;
        FLOAT (float_of_string text)
    | _ ->
        if !is_float then FLOAT (float_of_string text)
        else INT (Int64.of_string text)
  end

let next_token lx =
  skip_ws lx;
  lx.tok_pos <- { Ast.line = lx.line; col = lx.col };
  match peek_char lx with
  | None -> EOF
  | Some c when is_digit c -> lex_number lx
  | Some c when is_ident_start c ->
      let start = lx.pos in
      while (match peek_char lx with Some c -> is_ident_char c | None -> false) do
        advance_char lx
      done;
      let s = String.sub lx.src start (lx.pos - start) in
      if List.mem s keywords then KW s else IDENT s
  | Some _ ->
      let try_punct n =
        if lx.pos + n <= String.length lx.src then
          let s = String.sub lx.src lx.pos n in
          let table = match n with 3 -> punct3 | 2 -> punct2 | _ -> [] in
          if n = 1 || List.mem s table then Some s else None
        else None
      in
      let s =
        match try_punct 3 with
        | Some s -> s
        | None -> (
            match try_punct 2 with
            | Some s -> s
            | None -> (
                match try_punct 1 with
                | Some s -> s
                | None -> error lx "unexpected end of input"))
      in
      for _ = 1 to String.length s do
        advance_char lx
      done;
      PUNCT s

let create src =
  let lx =
    { src; pos = 0; line = 1; col = 1; tok = EOF; tok_pos = Ast.no_pos }
  in
  lx.tok <- next_token lx;
  lx

let token lx = lx.tok
let pos lx = lx.tok_pos

let advance lx = lx.tok <- next_token lx

let pp_token ppf = function
  | INT v -> Fmt.pf ppf "integer %Ld" v
  | FLOAT v -> Fmt.pf ppf "float %g" v
  | IDENT s -> Fmt.pf ppf "identifier '%s'" s
  | KW s -> Fmt.pf ppf "keyword '%s'" s
  | PUNCT s -> Fmt.pf ppf "'%s'" s
  | EOF -> Fmt.string ppf "end of input"
