(** AST normalization before lowering.

    The vectorizer's region recovery expects canonical structured loops:
    a single header block holding the phis and a trivial continue
    condition, with a single back edge.  This pass rewrites the AST so
    lowering can emit exactly that shape:

    - [for] loops become [while] loops (with the increment guarded so
      [continue] still reaches it);
    - [break]/[continue] become boolean flags plus guard [if]s — the
      scalar code stays sequentially correct, and the vectorizer sees
      only single-exit loops (its masks subsume the flags);
    - loops whose condition is not trivial (short-circuit operators,
      memory reads, calls) are rotated: the condition is evaluated
      *inside* the body under proper control flow, and the header tests
      only a flag.  This preserves C short-circuit safety (e.g.
      [while (i < n && a[i])]) without multi-block loop headers. *)

open Ast

let fresh =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Fmt.str "$%s%d" prefix !n

(* does evaluating [e] require control flow or memory access? *)
let rec trivial_expr (e : expr) =
  match e.e with
  | IntLit _ | FloatLit _ | BoolLit _ | Ident _ -> true
  | Un (_, a) -> trivial_expr a
  | Cast (_, a) -> trivial_expr a
  | Bin ((LAnd | LOr), _, _) -> false
  | Bin (_, a, b) -> trivial_expr a && trivial_expr b
  | Call _ | Index _ | Ternary _ -> false

(* statements that can transfer control out of the *current* loop level
   (not counting nested loops, which consume their own jumps) *)
let rec may_jump (s : stmt) =
  match s.s with
  | Break | Continue -> true
  | If (_, a, b) -> List.exists may_jump a || List.exists may_jump b
  | Block ss -> List.exists may_jump ss
  | While _ | For _ | Psim _ -> false
  | _ -> false

let bool_lit v = mk_e (BoolLit v)
let not_ e = mk_e (Un (LNot, e))
let ident x = mk_e (Ident x)
let assign x v = mk_s (Assign (LIdent x, v))
let decl_bool x v = mk_s (Decl (TBool, x, bool_lit v))

let rec desugar_stmts (ss : stmt list) : stmt list =
  List.concat_map desugar_stmt ss

and desugar_stmt (s : stmt) : stmt list =
  match s.s with
  | If (c, a, b) -> [ { s with s = If (c, desugar_stmts a, desugar_stmts b) } ]
  | Block ss -> [ { s with s = Block (desugar_stmts ss) } ]
  | Psim p -> [ { s with s = Psim { p with body = desugar_stmts p.body } } ]
  | For (init, cond, incr, body) ->
      (* continue must still execute the increment, so the increment is
         appended inside the loop guarded only by the break flag *)
      let incr_stmts = Option.to_list incr in
      let while_stmt = mk_s (While (cond, body @ incr_stmts)) in
      let jumps = List.exists may_jump body in
      if jumps then
        (* re-desugar as a while, but the increment must run on continue
           and not on break: handled by the flag machinery below with the
           increment marked as the loop's footer *)
        Option.to_list init @ desugar_loop cond body ~footer:incr_stmts
      else Option.to_list init @ desugar_stmt while_stmt
  | While (cond, body) ->
      if List.exists may_jump body || not (trivial_expr cond) then
        desugar_loop cond body ~footer:[]
      else [ { s with s = While (cond, desugar_stmts body) } ]
  | _ -> [ s ]

(* canonical loop: a break flag in the header, the real condition
   evaluated inside, body guarded by a per-iteration continue flag, and
   an optional footer (for-loop increment) that runs unless broken *)
and desugar_loop cond body ~footer : stmt list =
  let brk = fresh "brk" and cont = fresh "cont" in
  let body' = guard_jumps ~brk ~cont (desugar_stmts body) in
  let footer' = desugar_stmts footer in
  [
    decl_bool brk false;
    mk_s
      (While
         ( not_ (ident brk),
           [
             mk_s (If (cond, [], [ assign brk (bool_lit true) ]));
             mk_s
               (If
                  ( not_ (ident brk),
                    [ decl_bool cont false; mk_s (Block body') ]
                    @ (if footer' = [] then []
                       else
                         [ mk_s (If (not_ (ident brk), footer', [])) ]),
                    [] ));
           ] ));
  ]

(* rewrite break/continue at this loop level into flag updates, guarding
   every statement that follows a potential jump *)
and guard_jumps ~brk ~cont (ss : stmt list) : stmt list =
  match ss with
  | [] -> []
  | s :: rest ->
      let s' = xform_jump ~brk ~cont s in
      let rest' = guard_jumps ~brk ~cont rest in
      if may_jump s && rest' <> [] then
        s' @ [ mk_s (If (not_ (ident cont), rest', [])) ]
      else s' @ rest'

and xform_jump ~brk ~cont (s : stmt) : stmt list =
  match s.s with
  | Break -> [ assign brk (bool_lit true); assign cont (bool_lit true) ]
  | Continue -> [ assign cont (bool_lit true) ]
  | If (c, a, b) ->
      [ { s with s = If (c, guard_jumps ~brk ~cont a, guard_jumps ~brk ~cont b) } ]
  | Block ss -> [ { s with s = Block (guard_jumps ~brk ~cont ss) } ]
  | While _ | For _ ->
      (* nested loop: its jumps are its own; it is already desugared *)
      [ s ]
  | _ -> [ s ]

let desugar_func (f : func) : func = { f with body = desugar_stmts f.body }
let desugar_program (p : program) : program = List.map desugar_func p
