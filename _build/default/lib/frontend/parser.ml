(** Recursive-descent parser for PsimC. *)

open Ast

exception Error of string * pos

let error lx fmt =
  Fmt.kstr (fun s -> raise (Error (s, Lexer.pos lx))) fmt

let expect_punct lx p =
  match Lexer.token lx with
  | Lexer.PUNCT q when q = p -> Lexer.advance lx
  | t -> error lx "expected '%s', found %a" p Lexer.pp_token t

let expect_kw lx k =
  match Lexer.token lx with
  | Lexer.KW q when q = k -> Lexer.advance lx
  | t -> error lx "expected '%s', found %a" k Lexer.pp_token t

let accept_punct lx p =
  match Lexer.token lx with
  | Lexer.PUNCT q when q = p ->
      Lexer.advance lx;
      true
  | _ -> false

let accept_kw lx k =
  match Lexer.token lx with
  | Lexer.KW q when q = k ->
      Lexer.advance lx;
      true
  | _ -> false

let ident lx =
  match Lexer.token lx with
  | Lexer.IDENT s ->
      Lexer.advance lx;
      s
  | t -> error lx "expected identifier, found %a" Lexer.pp_token t

(* -- types -- *)

let base_ty_of_kw = function
  | "void" -> Some TVoid
  | "bool" -> Some TBool
  | "int8" -> Some (TInt (8, true))
  | "int16" -> Some (TInt (16, true))
  | "int32" | "int" -> Some (TInt (32, true))
  | "int64" -> Some (TInt (64, true))
  | "uint8" -> Some (TInt (8, false))
  | "uint16" -> Some (TInt (16, false))
  | "uint32" | "uint" -> Some (TInt (32, false))
  | "uint64" | "size_t" -> Some (TInt (64, false))
  | "float32" | "float" -> Some (TFloat 32)
  | "float64" | "double" -> Some (TFloat 64)
  | _ -> None

let peek_base_ty lx =
  match Lexer.token lx with Lexer.KW k -> base_ty_of_kw k | _ -> None

let parse_ty lx =
  match peek_base_ty lx with
  | None -> error lx "expected a type, found %a" Lexer.pp_token (Lexer.token lx)
  | Some t ->
      Lexer.advance lx;
      let ty = ref t in
      while accept_punct lx "*" do
        ty := TPtr !ty
      done;
      !ty

(* -- expressions -- *)

let rec parse_expr lx = parse_ternary lx

and parse_ternary lx =
  let c = parse_lor lx in
  if accept_punct lx "?" then begin
    let a = parse_expr lx in
    expect_punct lx ":";
    let b = parse_ternary lx in
    { e = Ternary (c, a, b); pos = c.pos }
  end
  else c

and binop_chain lx sub table =
  let lhs = ref (sub lx) in
  let rec go () =
    match Lexer.token lx with
    | Lexer.PUNCT p when List.mem_assoc p table ->
        Lexer.advance lx;
        let rhs = sub lx in
        lhs := { e = Bin (List.assoc p table, !lhs, rhs); pos = !lhs.pos };
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_lor lx = binop_chain lx parse_land [ ("||", LOr) ]
and parse_land lx = binop_chain lx parse_bor [ ("&&", LAnd) ]
and parse_bor lx = binop_chain lx parse_bxor [ ("|", BOr) ]
and parse_bxor lx = binop_chain lx parse_band [ ("^", BXor) ]
and parse_band lx = binop_chain lx parse_eq [ ("&", BAnd) ]
and parse_eq lx = binop_chain lx parse_rel [ ("==", Eq); ("!=", Ne) ]

and parse_rel lx =
  binop_chain lx parse_shift [ ("<", Lt); (">", Gt); ("<=", Le); (">=", Ge) ]

and parse_shift lx = binop_chain lx parse_add [ ("<<", Shl); (">>", Shr) ]
and parse_add lx = binop_chain lx parse_mul [ ("+", Add); ("-", Sub) ]

and parse_mul lx =
  binop_chain lx parse_unary [ ("*", Mul); ("/", Div); ("%", Rem) ]

and parse_unary lx =
  let pos = Lexer.pos lx in
  match Lexer.token lx with
  | Lexer.PUNCT "-" ->
      Lexer.advance lx;
      { e = Un (Neg, parse_unary lx); pos }
  | Lexer.PUNCT "!" ->
      Lexer.advance lx;
      { e = Un (LNot, parse_unary lx); pos }
  | Lexer.PUNCT "~" ->
      Lexer.advance lx;
      { e = Un (BNot, parse_unary lx); pos }
  | Lexer.PUNCT "(" when is_cast lx ->
      Lexer.advance lx;
      let ty = parse_ty lx in
      expect_punct lx ")";
      { e = Cast (ty, parse_unary lx); pos }
  | _ -> parse_postfix lx

and is_cast lx =
  (* "(" followed by a type keyword means a cast *)
  let save_pos = Lexer.pos lx in
  ignore save_pos;
  (* cheap lookahead: peek at the source after '(' is not available
     without copying the lexer, so use the token stream trick: a cast
     begins with a type keyword right after '('.  The current token is
     '(' here; we can look at the raw source. *)
  lookahead_is_type lx

and lookahead_is_type lx =
  (* clone the lexer state to peek one token ahead *)
  let saved_pos = lx.Lexer.pos
  and saved_line = lx.Lexer.line
  and saved_col = lx.Lexer.col
  and saved_tok = lx.Lexer.tok
  and saved_tp = lx.Lexer.tok_pos in
  Lexer.advance lx;
  let is_ty = peek_base_ty lx <> None in
  lx.Lexer.pos <- saved_pos;
  lx.Lexer.line <- saved_line;
  lx.Lexer.col <- saved_col;
  lx.Lexer.tok <- saved_tok;
  lx.Lexer.tok_pos <- saved_tp;
  is_ty

and parse_postfix lx =
  let base = parse_primary lx in
  let rec go e =
    if accept_punct lx "[" then begin
      let idx = parse_expr lx in
      expect_punct lx "]";
      go { e = Index (e, idx); pos = e.pos }
    end
    else e
  in
  go base

and parse_primary lx =
  let pos = Lexer.pos lx in
  match Lexer.token lx with
  | Lexer.INT v ->
      Lexer.advance lx;
      { e = IntLit v; pos }
  | Lexer.FLOAT v ->
      Lexer.advance lx;
      { e = FloatLit v; pos }
  | Lexer.KW "true" ->
      Lexer.advance lx;
      { e = BoolLit true; pos }
  | Lexer.KW "false" ->
      Lexer.advance lx;
      { e = BoolLit false; pos }
  | Lexer.IDENT name ->
      Lexer.advance lx;
      if accept_punct lx "(" then begin
        let args = ref [] in
        if not (accept_punct lx ")") then begin
          let rec loop () =
            args := parse_expr lx :: !args;
            if accept_punct lx "," then loop () else expect_punct lx ")"
          in
          loop ()
        end;
        { e = Call (name, List.rev !args); pos }
      end
      else { e = Ident name; pos }
  | Lexer.PUNCT "(" ->
      Lexer.advance lx;
      let e = parse_expr lx in
      expect_punct lx ")";
      e
  | t -> error lx "expected expression, found %a" Lexer.pp_token t

(* -- statements -- *)

let compound_ops =
  [
    ("+=", Add); ("-=", Sub); ("*=", Mul); ("/=", Div); ("%=", Rem);
    ("&=", BAnd); ("|=", BOr); ("^=", BXor); ("<<=", Shl); (">>=", Shr);
  ]

let rec parse_stmt lx : stmt =
  let spos = Lexer.pos lx in
  match Lexer.token lx with
  | Lexer.PUNCT "{" -> { s = Block (parse_block lx); spos }
  | Lexer.KW "if" ->
      Lexer.advance lx;
      expect_punct lx "(";
      let c = parse_expr lx in
      expect_punct lx ")";
      let thn = parse_stmt_as_list lx in
      let els = if accept_kw lx "else" then parse_stmt_as_list lx else [] in
      { s = If (c, thn, els); spos }
  | Lexer.KW "while" ->
      Lexer.advance lx;
      expect_punct lx "(";
      let c = parse_expr lx in
      expect_punct lx ")";
      let body = parse_stmt_as_list lx in
      { s = While (c, body); spos }
  | Lexer.KW "for" ->
      Lexer.advance lx;
      expect_punct lx "(";
      let init =
        if accept_punct lx ";" then None
        else begin
          let s = parse_simple_stmt lx in
          expect_punct lx ";";
          Some s
        end
      in
      let cond =
        if accept_punct lx ";" then { e = BoolLit true; pos = spos }
        else begin
          let e = parse_expr lx in
          expect_punct lx ";";
          e
        end
      in
      let incr =
        match Lexer.token lx with
        | Lexer.PUNCT ")" -> None
        | _ -> Some (parse_simple_stmt lx)
      in
      expect_punct lx ")";
      let body = parse_stmt_as_list lx in
      { s = For (init, cond, incr, body); spos }
  | Lexer.KW "break" ->
      Lexer.advance lx;
      expect_punct lx ";";
      { s = Break; spos }
  | Lexer.KW "continue" ->
      Lexer.advance lx;
      expect_punct lx ";";
      { s = Continue; spos }
  | Lexer.KW "return" ->
      Lexer.advance lx;
      if accept_punct lx ";" then { s = Return None; spos }
      else begin
        let e = parse_expr lx in
        expect_punct lx ";";
        { s = Return (Some e); spos }
      end
  | Lexer.KW "psim" ->
      Lexer.advance lx;
      expect_kw lx "gang_size";
      expect_punct lx "(";
      let g = parse_expr lx in
      expect_punct lx ")";
      expect_kw lx "num_spmd_threads";
      expect_punct lx "(";
      let n = parse_expr lx in
      expect_punct lx ")";
      let body = parse_block lx in
      { s = Psim { gang_size = g; num_threads = n; body }; spos }
  | _ ->
      let s = parse_simple_stmt lx in
      expect_punct lx ";";
      s

and parse_stmt_as_list lx =
  match parse_stmt lx with { s = Block ss; _ } -> ss | s -> [ s ]

and parse_block lx =
  expect_punct lx "{";
  let stmts = ref [] in
  while not (accept_punct lx "}") do
    stmts := parse_stmt lx :: !stmts
  done;
  List.rev !stmts

(* declaration / assignment / expression statement, no trailing ';' *)
and parse_simple_stmt lx : stmt =
  let spos = Lexer.pos lx in
  match peek_base_ty lx with
  | Some _ ->
      let ty = parse_ty lx in
      let name = ident lx in
      if accept_punct lx "[" then begin
        let n =
          match Lexer.token lx with
          | Lexer.INT v ->
              Lexer.advance lx;
              Int64.to_int v
          | t -> error lx "expected array length, found %a" Lexer.pp_token t
        in
        expect_punct lx "]";
        { s = DeclArr (ty, name, n); spos }
      end
      else begin
        expect_punct lx "=";
        let e = parse_expr lx in
        { s = Decl (ty, name, e); spos }
      end
  | None -> (
      let e = parse_expr lx in
      let as_lvalue (e : expr) =
        match e.e with
        | Ident x -> LIdent x
        | Index (p, i) -> LIndex (p, i)
        | _ -> error lx "expression is not assignable"
      in
      match Lexer.token lx with
      | Lexer.PUNCT "=" ->
          Lexer.advance lx;
          let rhs = parse_expr lx in
          { s = Assign (as_lvalue e, rhs); spos }
      | Lexer.PUNCT p when List.mem_assoc p compound_ops ->
          Lexer.advance lx;
          let rhs = parse_expr lx in
          let op = List.assoc p compound_ops in
          { s = Assign (as_lvalue e, { e = Bin (op, e, rhs); pos = e.pos }); spos }
      | _ -> { s = ExprStmt e; spos })

(* -- top level -- *)

let parse_param lx =
  let pty = parse_ty lx in
  let restrict = accept_kw lx "restrict" in
  let pname = ident lx in
  { pname; pty; restrict }

let parse_func lx =
  let inline = accept_kw lx "inline" in
  let ret = parse_ty lx in
  let fname = ident lx in
  expect_punct lx "(";
  let params = ref [] in
  if not (accept_punct lx ")") then begin
    let rec loop () =
      params := parse_param lx :: !params;
      if accept_punct lx "," then loop () else expect_punct lx ")"
    in
    loop ()
  end;
  let body = parse_block lx in
  { fname; params = List.rev !params; ret; body; inline }

(** Parse a whole PsimC translation unit. *)
let parse_program (src : string) : program =
  let lx = Lexer.create src in
  let funcs = ref [] in
  while Lexer.token lx <> Lexer.EOF do
    funcs := parse_func lx :: !funcs
  done;
  List.rev !funcs
