lib/frontend/desugar.ml: Ast Fmt List Option
