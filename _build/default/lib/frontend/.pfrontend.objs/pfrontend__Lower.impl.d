lib/frontend/lower.ml: Ast Desugar Fmt Hashtbl Inline Int64 List Map Option Parser Pir String
