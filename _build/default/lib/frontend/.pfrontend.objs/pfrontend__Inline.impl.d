lib/frontend/inline.ml: Ast Fmt List Option
