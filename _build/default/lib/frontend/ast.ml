(** Abstract syntax of PsimC, the C-like SPMD language of the front-end.

    PsimC plays the role of "Parsimony-enabled C++" in the paper
    (Listing 5): standard serial C-like code plus the [psim] construct
    that opens an SPMD region with an explicit gang size and thread
    count, and the [psim_*] API. *)

type pos = { line : int; col : int }

let pp_pos ppf p = Fmt.pf ppf "%d:%d" p.line p.col

(** Source types.  Signedness lives here (PIR operations encode it, PIR
    types do not, as in LLVM). *)
type ty =
  | TInt of int * bool  (** width in bits, signed? *)
  | TFloat of int  (** 32 or 64 *)
  | TBool
  | TPtr of ty
  | TVoid

let rec pp_ty ppf = function
  | TInt (w, true) -> Fmt.pf ppf "int%d" w
  | TInt (w, false) -> Fmt.pf ppf "uint%d" w
  | TFloat w -> Fmt.pf ppf "float%d" w
  | TBool -> Fmt.string ppf "bool"
  | TPtr t -> Fmt.pf ppf "%a*" pp_ty t
  | TVoid -> Fmt.string ppf "void"

let ty_to_string t = Fmt.str "%a" pp_ty t

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | BAnd
  | BOr
  | BXor
  | Shl
  | Shr
  | Lt
  | Gt
  | Le
  | Ge
  | Eq
  | Ne
  | LAnd  (** short-circuit *)
  | LOr

type unop = Neg | LNot | BNot

type expr = { e : expr_kind; pos : pos }

and expr_kind =
  | IntLit of int64
  | FloatLit of float
  | BoolLit of bool
  | Ident of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Cast of ty * expr
  | Call of string * expr list
  | Index of expr * expr  (** p[i] as an rvalue *)
  | Ternary of expr * expr * expr  (** c ? a : b *)

type lvalue =
  | LIdent of string
  | LIndex of expr * expr  (** p[i] as a store target *)

type stmt = { s : stmt_kind; spos : pos }

and stmt_kind =
  | Decl of ty * string * expr
  | DeclArr of ty * string * int
      (** local array: [float32 v[17];] — per-thread private storage *)
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr * stmt option * stmt list
  | Break
  | Continue
  | Return of expr option
  | ExprStmt of expr
  | Block of stmt list
  | Psim of { gang_size : expr; num_threads : expr; body : stmt list }

type param = { pname : string; pty : ty; restrict : bool }

type func = {
  fname : string;
  params : param list;
  ret : ty;
  body : stmt list;
  inline : bool;
}

type program = func list

(* -- convenience constructors used by the desugarer -- *)

let no_pos = { line = 0; col = 0 }
let mk_e e = { e; pos = no_pos }
let mk_s s = { s = s; spos = no_pos }
