(** AST-level inlining of user function calls.

    The paper's prototype relies on the standard optimizer to re-inline
    extracted/vectorized functions; here we inline user calls before
    lowering so the vectorizer sees whole regions (calls that cannot be
    inlined — out-of-module or multi-return — are left in place and the
    vectorizer serializes them per §4.2.3).

    Works in two steps on desugared ASTs:

    + *hoisting*: every user-function call is lifted into its own
      [Decl (ty, tmp, call)] statement (or left as a bare [ExprStmt] for
      void calls), so calls appear only in statement position;
    + *expansion*: those statements are replaced by the callee's body
      with parameters bound to fresh locals and every local renamed
      fresh.  A callee is inlinable if its only [return] is the final
      statement (or it returns void with no returns at all). *)

open Ast

let fresh =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Fmt.str "$inl_%s%d" prefix !n

let find_func (p : program) name = List.find_opt (fun f -> f.fname = name) p

(* -- renaming substitution -- *)

let rec subst_expr ren (e : expr) : expr =
  let k =
    match e.e with
    | Ident x -> Ident (try List.assoc x ren with Not_found -> x)
    | IntLit _ | FloatLit _ | BoolLit _ -> e.e
    | Bin (op, a, b) -> Bin (op, subst_expr ren a, subst_expr ren b)
    | Un (op, a) -> Un (op, subst_expr ren a)
    | Cast (t, a) -> Cast (t, subst_expr ren a)
    | Call (f, args) -> Call (f, List.map (subst_expr ren) args)
    | Index (p, i) -> Index (subst_expr ren p, subst_expr ren i)
    | Ternary (c, a, b) ->
        Ternary (subst_expr ren c, subst_expr ren a, subst_expr ren b)
  in
  { e with e = k }

let rec subst_stmts ren (ss : stmt list) : stmt list =
  match ss with
  | [] -> []
  | s :: rest -> (
      match s.s with
      | Decl (t, x, e) ->
          let x' = fresh x in
          let s' = { s with s = Decl (t, x', subst_expr ren e) } in
          s' :: subst_stmts ((x, x') :: ren) rest
      | DeclArr (t, x, n) ->
          let x' = fresh x in
          { s with s = DeclArr (t, x', n) } :: subst_stmts ((x, x') :: ren) rest
      | Assign (LIdent x, e) ->
          let x' = try List.assoc x ren with Not_found -> x in
          { s with s = Assign (LIdent x', subst_expr ren e) }
          :: subst_stmts ren rest
      | Assign (LIndex (p, i), e) ->
          {
            s with
            s = Assign (LIndex (subst_expr ren p, subst_expr ren i), subst_expr ren e);
          }
          :: subst_stmts ren rest
      | If (c, a, b) ->
          { s with s = If (subst_expr ren c, subst_stmts ren a, subst_stmts ren b) }
          :: subst_stmts ren rest
      | While (c, body) ->
          { s with s = While (subst_expr ren c, subst_stmts ren body) }
          :: subst_stmts ren rest
      | For _ -> invalid_arg "Inline.subst: for loop after desugaring"
      | Break | Continue -> s :: subst_stmts ren rest
      | Return e -> { s with s = Return (Option.map (subst_expr ren) e) } :: subst_stmts ren rest
      | ExprStmt e -> { s with s = ExprStmt (subst_expr ren e) } :: subst_stmts ren rest
      | Block body ->
          { s with s = Block (subst_stmts ren body) } :: subst_stmts ren rest
      | Psim p ->
          {
            s with
            s =
              Psim
                {
                  gang_size = subst_expr ren p.gang_size;
                  num_threads = subst_expr ren p.num_threads;
                  body = subst_stmts ren p.body;
                };
          }
          :: subst_stmts ren rest)

(* -- inlinability -- *)

let inlinable (f : func) =
  let rec no_return ss =
    List.for_all
      (fun s ->
        match s.s with
        | Return _ -> false
        | If (_, a, b) -> no_return a && no_return b
        | While (_, b) | Block b -> no_return b
        | Psim p -> no_return p.body
        | _ -> true)
      ss
  in
  match f.ret with
  | TVoid -> no_return f.body
  | _ -> (
      match List.rev f.body with
      | { s = Return (Some _); _ } :: rest -> no_return (List.rev rest)
      | _ -> false)

(* -- hoisting -- *)

let rec hoist_expr prog acc (e : expr) : expr =
  let lift k = { e with e = k } in
  match e.e with
  | Call (name, args) when find_func prog name <> None ->
      let args' = List.map (hoist_expr prog acc) args in
      let callee = Option.get (find_func prog name) in
      if callee.ret = TVoid then
        (* void call in expression position is ill-typed anyway *)
        lift (Call (name, args'))
      else begin
        let tmp = fresh "ret" in
        acc := !acc @ [ mk_s (Decl (callee.ret, tmp, lift (Call (name, args')))) ];
        lift (Ident tmp)
      end
  | Call (name, args) -> lift (Call (name, List.map (hoist_expr prog acc) args))
  | Bin (op, a, b) -> lift (Bin (op, hoist_expr prog acc a, hoist_expr prog acc b))
  | Un (op, a) -> lift (Un (op, hoist_expr prog acc a))
  | Cast (t, a) -> lift (Cast (t, hoist_expr prog acc a))
  | Index (p, i) -> lift (Index (hoist_expr prog acc p, hoist_expr prog acc i))
  | Ternary (c, a, b) ->
      lift
        (Ternary (hoist_expr prog acc c, hoist_expr prog acc a, hoist_expr prog acc b))
  | IntLit _ | FloatLit _ | BoolLit _ | Ident _ -> e

let rec hoist_stmts prog (ss : stmt list) : stmt list =
  List.concat_map
    (fun s ->
      let acc = ref [] in
      let s' =
        match s.s with
        | Decl (t, x, e) -> { s with s = Decl (t, x, hoist_expr prog acc e) }
        | Assign (lv, e) ->
            let lv' =
              match lv with
              | LIdent x -> LIdent x
              | LIndex (p, i) ->
                  LIndex (hoist_expr prog acc p, hoist_expr prog acc i)
            in
            { s with s = Assign (lv', hoist_expr prog acc e) }
        | If (c, a, b) ->
            { s with s = If (hoist_expr prog acc c, hoist_stmts prog a, hoist_stmts prog b) }
        | While (c, body) ->
            (* loop conditions are trivial after desugaring: no calls *)
            { s with s = While (c, hoist_stmts prog body) }
        | ExprStmt { e = Call (name, args); pos }
          when find_func prog name <> None ->
            {
              s with
              s =
                ExprStmt
                  { e = Call (name, List.map (hoist_expr prog acc) args); pos };
            }
        | ExprStmt e -> { s with s = ExprStmt (hoist_expr prog acc e) }
        | Block body -> { s with s = Block (hoist_stmts prog body) }
        | Psim p -> { s with s = Psim { p with body = hoist_stmts prog p.body } }
        | Return e -> { s with s = Return (Option.map (hoist_expr prog acc) e) }
        | _ -> s
      in
      !acc @ [ s' ])
    ss

(* -- expansion -- *)

let expand_call prog (callee : func) args ~(bind : (ty * string) option) :
    stmt list =
  let ren = List.map (fun p -> (p.pname, fresh p.pname)) callee.params in
  let prologue =
    List.map2
      (fun p a -> mk_s (Decl (p.pty, List.assoc p.pname ren, a)))
      callee.params args
  in
  ignore prog;
  let body = subst_stmts ren callee.body in
  match bind with
  | None -> prologue @ body
  | Some (ty, name) -> (
      match List.rev body with
      | { s = Return (Some e); _ } :: rest ->
          prologue @ List.rev rest @ [ mk_s (Decl (ty, name, e)) ]
      | _ -> invalid_arg "Inline.expand_call: callee has no trailing return")

let rec expand_stmts prog (ss : stmt list) : stmt list * bool =
  let changed = ref false in
  let out =
    List.concat_map
      (fun s ->
        match s.s with
        | Decl (t, x, { e = Call (name, args); _ }) -> (
            match find_func prog name with
            | Some callee when inlinable callee && callee.ret <> TVoid ->
                changed := true;
                expand_call prog callee args ~bind:(Some (t, x))
            | _ -> [ s ])
        | ExprStmt { e = Call (name, args); _ } -> (
            match find_func prog name with
            | Some callee when inlinable callee && callee.ret = TVoid ->
                changed := true;
                expand_call prog callee args ~bind:None
            | _ -> [ s ])
        | If (c, a, b) ->
            let a', c1 = expand_stmts prog a in
            let b', c2 = expand_stmts prog b in
            if c1 || c2 then changed := true;
            [ { s with s = If (c, a', b') } ]
        | While (c, body) ->
            let body', c1 = expand_stmts prog body in
            if c1 then changed := true;
            [ { s with s = While (c, body') } ]
        | Block body ->
            let body', c1 = expand_stmts prog body in
            if c1 then changed := true;
            [ { s with s = Block body' } ]
        | Psim p ->
            let body', c1 = expand_stmts prog p.body in
            if c1 then changed := true;
            [ { s with s = Psim { p with body = body' } } ]
        | _ -> [ s ])
      ss
  in
  (out, !changed)

(** Inline user calls across the whole program (mirroring what -O3 would
    do before either vectorizer runs), to a nesting depth of 10. *)
let inline_program (p : program) : program =
  let rec fix f depth =
    let body = hoist_stmts p f.body in
    let body', changed = expand_stmts p body in
    let f = { f with body = body' } in
    if changed && depth < 10 then fix f (depth + 1) else f
  in
  List.map (fun f -> fix f 0) p
