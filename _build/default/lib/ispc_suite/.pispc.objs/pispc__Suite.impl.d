lib/ispc_suite/suite.ml: Fmt Pir Pmachine Psimdlib
