(** The seven ispc example benchmarks ported to PsimC (paper Figure 4).

    Each benchmark provides a plain serial version (the LLVM
    auto-vectorization baseline compiles it; on most of these it fails
    for the classic reasons — divergent inner loops, libm calls,
    unprovable aliasing) and a Parsimony port.  The ispc bars of
    Figure 4 run the same Parsimony port through the vectorizer in
    ispc mode (gang-synchronous semantics cost nothing; the only
    difference is ispc's built-in vector math library, §6). *)

open Psimdlib.Workload

let vf v = Pmachine.Value.F v

let mk ~name ~family ~gang ~serial ~psim ~buffers ~scalars ~tol =
  {
    kname = name;
    family;
    gang;
    psim_src = psim;
    serial_src = serial;
    hand = None;
    buffers;
    scalars;
    float_tolerance = tol;
  }

let f32buf name seed len = { bname = name; elem = Pir.Types.F32; len; init = f32_pos seed; output = false }
let f32outbuf name len = { bname = name; elem = Pir.Types.F32; len; init = zero32f; output = true }
let i32outbuf name len = { bname = name; elem = Pir.Types.I32; len; init = (fun _ -> Pmachine.Value.I 0L); output = true }

(* -- 1. mandelbrot: the canonical divergent-loop benchmark -- *)

let mandel_w = 64
let mandel_h = 24
let mandel_iters = 48

let mandelbrot =
  let body =
    Fmt.str
      {|
      float32 cx = -2.0 + (float32)(int32)x * (3.0 / %d.0);
      float32 cy = -1.0 + (float32)(int32)y * (2.0 / %d.0);
      float32 zx = 0.0;
      float32 zy = 0.0;
      int32 it = 0;
      while (it < %d) {
        if (zx * zx + zy * zy > 4.0) { break; }
        float32 nzx = zx * zx - zy * zy + cx;
        zy = 2.0 * zx * zy + cy;
        zx = nzx;
        it = it + 1;
      }
      counts[y * %d + x] = it;|}
      mandel_w mandel_h mandel_iters mandel_w
  in
  let serial =
    Fmt.str
      {|
void mandelbrot(int32* restrict counts, int64 w, int64 h) {
  for (int64 y = 0; y < h; y = y + 1) {
    for (int64 x = 0; x < w; x = x + 1) {
%s
    }
  }
}
|}
      body
  in
  let psim =
    Fmt.str
      {|
void mandelbrot(int32* counts, int64 w, int64 h) {
  for (int64 y = 0; y < h; y = y + 1) {
    psim gang_size(16) num_spmd_threads(w) {
      int64 x = psim_thread_num();
%s
    }
  }
}
|}
      body
  in
  mk ~name:"mandelbrot" ~family:"ispc" ~gang:16 ~serial ~psim
    ~buffers:[ i32outbuf "counts" (mandel_w * mandel_h) ]
    ~scalars:[ vi mandel_w; vi mandel_h ]
    ~tol:0.0

(* -- 2. black-scholes option pricing: libm-call heavy, no divergence -- *)

let n_options = 512

let black_scholes =
  let body =
    {|
    float32 s = S[i];
    float32 x = X[i];
    float32 t = T[i] + 0.2;
    float32 r = 0.02;
    float32 v = 0.3;
    float32 sqt = sqrtf(t);
    float32 d1 = (logf(s / x) + (r + 0.5 * v * v) * t) / (v * sqt);
    float32 d2 = d1 - v * sqt;
    // cumulative normal distribution, Abramowitz-Stegun polynomial
    float32 ad1 = fabsf(d1);
    float32 k1 = 1.0 / (1.0 + 0.2316419 * ad1);
    float32 w1 = 1.0 - 0.39894228 * expf(0.0 - 0.5 * d1 * d1)
      * (k1 * (0.31938153 + k1 * (-0.356563782 + k1 * (1.781477937 + k1 * (-1.821255978 + k1 * 1.330274429)))));
    float32 nd1 = d1 < 0.0 ? 1.0 - w1 : w1;
    float32 ad2 = fabsf(d2);
    float32 k2 = 1.0 / (1.0 + 0.2316419 * ad2);
    float32 w2 = 1.0 - 0.39894228 * expf(0.0 - 0.5 * d2 * d2)
      * (k2 * (0.31938153 + k2 * (-0.356563782 + k2 * (1.781477937 + k2 * (-1.821255978 + k2 * 1.330274429)))));
    float32 nd2 = d2 < 0.0 ? 1.0 - w2 : w2;
    result[i] = s * nd1 - x * expf(0.0 - r * t) * nd2;|}
  in
  let serial =
    Fmt.str
      {|
void black_scholes(float32* restrict S, float32* restrict X, float32* restrict T, float32* restrict result, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
%s
  }
}
|}
      body
  in
  let psim =
    Fmt.str
      {|
void black_scholes(float32* S, float32* X, float32* T, float32* result, int64 n) {
  psim gang_size(16) num_spmd_threads(n) {
    int64 i = psim_thread_num();
%s
  }
}
|}
      body
  in
  mk ~name:"black_scholes" ~family:"ispc" ~gang:16 ~serial ~psim
    ~buffers:
      [
        f32buf "S" 701 n_options;
        f32buf "X" 702 n_options;
        f32buf "T" 703 n_options;
        f32outbuf "result" n_options;
      ]
    ~scalars:[ vi n_options ]
    ~tol:1e-5

(* -- 3. binomial options: pow-dominated with a per-thread lattice array
   (the Figure 4 benchmark where ispc's faster pow shows) -- *)

let bin_steps = 12

let binomial_options =
  let body =
    Fmt.str
      {|
    float32 s = S[i];
    float32 x = X[i];
    float32 t = T[i] + 0.2;
    float32 r = 0.02;
    float32 v = 0.3;
    float32 dt = t / %d.0;
    float32 u = expf(v * sqrtf(dt));
    float32 d = 1.0 / u;
    float32 disc = expf(0.0 - r * dt);
    float32 pu = (expf(r * dt) - d) / (u - d);
    float32 pd = 1.0 - pu;
    float32 vals[%d];
    for (int32 j = 0; j <= %d; j = j + 1) {
      float32 price = s * powf(u, (float32)(2 * j - %d));
      float32 ex = price - x;
      vals[(int64)j] = ex > 0.0 ? ex : 0.0;
    }
    for (int32 step = %d; step >= 1; step = step - 1) {
      for (int32 j = 0; j < step; j = j + 1) {
        vals[(int64)j] = disc * (pd * vals[(int64)j] + pu * vals[(int64)j + 1]);
      }
    }
    result[i] = vals[0];|}
      bin_steps (bin_steps + 1) bin_steps bin_steps bin_steps
  in
  let serial =
    Fmt.str
      {|
void binomial_options(float32* restrict S, float32* restrict X, float32* restrict T, float32* restrict result, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
%s
  }
}
|}
      body
  in
  let psim =
    Fmt.str
      {|
void binomial_options(float32* S, float32* X, float32* T, float32* result, int64 n) {
  psim gang_size(16) num_spmd_threads(n) {
    int64 i = psim_thread_num();
%s
  }
}
|}
      body
  in
  mk ~name:"binomial_options" ~family:"ispc" ~gang:16 ~serial ~psim
    ~buffers:
      [
        f32buf "S" 711 n_options;
        f32buf "X" 712 n_options;
        f32buf "T" 713 n_options;
        f32outbuf "result" n_options;
      ]
    ~scalars:[ vi n_options ]
    ~tol:1e-4

(* -- 4. noise: gradient noise with a permutation-table hash -- *)

let noise_w = 64
let noise_h = 24

let noise =
  let body =
    Fmt.str
      {|
      float32 fx = (float32)(int32)x * 0.17;
      float32 fy = (float32)(int32)y * 0.23;
      float32 flx = floorf(fx);
      float32 fly = floorf(fy);
      int32 ix = (int32)flx & 255;
      int32 iy = (int32)fly & 255;
      float32 rx = fx - flx;
      float32 ry = fy - fly;
      float32 ux = rx * rx * rx * (rx * (rx * 6.0 - 15.0) + 10.0);
      float32 uy = ry * ry * ry * (ry * (ry * 6.0 - 15.0) + 10.0);
      int32 h00 = (int32)perm[(int64)((perm[(int64)(ix & 255)] + iy) & 255)];
      int32 h10 = (int32)perm[(int64)((perm[(int64)((ix + 1) & 255)] + iy) & 255)];
      int32 h01 = (int32)perm[(int64)((perm[(int64)(ix & 255)] + iy + 1) & 255)];
      int32 h11 = (int32)perm[(int64)((perm[(int64)((ix + 1) & 255)] + iy + 1) & 255)];
      float32 g00 = (h00 & 1) == 0 ? rx + ry : rx - ry;
      float32 g10 = (h10 & 1) == 0 ? rx - 1.0 + ry : rx - 1.0 - ry;
      float32 g01 = (h01 & 1) == 0 ? rx + ry - 1.0 : rx - ry + 1.0;
      float32 g11 = (h11 & 1) == 0 ? rx - 1.0 + ry - 1.0 : rx - 1.0 - ry + 1.0;
      float32 lx0 = g00 + ux * (g10 - g00);
      float32 lx1 = g01 + ux * (g11 - g01);
      out[y * %d + x] = lx0 + uy * (lx1 - lx0);|}
      noise_w
  in
  let serial =
    Fmt.str
      {|
void noise(uint8* restrict perm, float32* restrict out, int64 w, int64 h) {
  for (int64 y = 0; y < h; y = y + 1) {
    for (int64 x = 0; x < w; x = x + 1) {
%s
    }
  }
}
|}
      body
  in
  let psim =
    Fmt.str
      {|
void noise(uint8* perm, float32* out, int64 w, int64 h) {
  for (int64 y = 0; y < h; y = y + 1) {
    psim gang_size(16) num_spmd_threads(w) {
      int64 x = psim_thread_num();
%s
    }
  }
}
|}
      body
  in
  mk ~name:"noise" ~family:"ispc" ~gang:16 ~serial ~psim
    ~buffers:
      [
        { bname = "perm"; elem = Pir.Types.I8; len = 256; init = u8 720; output = false };
        f32outbuf "out" (noise_w * noise_h);
      ]
    ~scalars:[ vi noise_w; vi noise_h ]
    ~tol:1e-5

(* -- 5. stencil: 5-point time-stepped Jacobi (ping-pong buffers; the
   serial version cannot prove the buffers disjoint) -- *)

let stencil_w = 96
let stencil_h = 16

let stencil =
  let body =
    {|
      int64 o = rowbase + x;
      xout[o] = 0.5 * xin[o]
        + 0.125 * (xin[o - 1] + xin[o + 1] + xin[o - w] + xin[o + w]);|}
  in
  let serial =
    Fmt.str
      {|
void stencil(float32* xin, float32* xout, int64 w, int64 h) {
  for (int64 y = 1; y < h - 1; y = y + 1) {
    int64 rowbase = y * w;
    for (int64 x = 1; x < w - 1; x = x + 1) {
%s
    }
  }
}
|}
      body
  in
  let psim =
    Fmt.str
      {|
void stencil(float32* xin, float32* xout, int64 w, int64 h) {
  for (int64 y = 1; y < h - 1; y = y + 1) {
    int64 rowbase = y * w;
    psim gang_size(16) num_spmd_threads(w - 2) {
      int64 x = psim_thread_num() + 1;
%s
    }
  }
}
|}
      body
  in
  mk ~name:"stencil" ~family:"ispc" ~gang:16 ~serial ~psim
    ~buffers:
      [
        f32buf "xin" 730 (stencil_w * stencil_h);
        f32outbuf "xout" (stencil_w * stencil_h);
      ]
    ~scalars:[ vi stencil_w; vi stencil_h ]
    ~tol:1e-5

(* -- 6. aobench: ambient occlusion over a 3-sphere + plane scene -- *)

let ao_w = 32
let ao_h = 16

let aobench =
  (* per-pixel: primary ray down the z axis; nearest sphere/plane hit;
     8 fixed hemisphere directions tested for occlusion *)
  let body =
    Fmt.str
      {|
      float32 px = ((float32)(int32)x + 0.5) * (2.0 / %d.0) - 1.0;
      float32 py = ((float32)(int32)y + 0.5) * (2.0 / %d.0) - 1.0;
      // ray origin (px, py, 0), direction (0, 0, -1)
      float32 best = 1.0e30;
      float32 nx = 0.0;
      float32 ny = 0.0;
      float32 nz = 0.0;
      float32 hx = 0.0;
      float32 hy = 0.0;
      float32 hz = 0.0;
      bool hit = false;
      for (int32 s = 0; s < 3; s = s + 1) {
        float32 cx = (float32)(s - 1) * 1.0;
        float32 cy = 0.0;
        float32 cz = -2.0 - (float32)s * 0.4;
        float32 radius = 0.5;
        float32 ox = px - cx;
        float32 oy = py - cy;
        float32 oz = 0.0 - cz;
        float32 bq = ox * 0.0 + oy * 0.0 + oz * (-1.0);
        float32 cq = ox * ox + oy * oy + oz * oz - radius * radius;
        float32 disc = bq * bq - cq;
        if (disc > 0.0) {
          float32 tq = 0.0 - bq - sqrtf(disc);
          if (tq > 0.0 && tq < best) {
            best = tq;
            hit = true;
            hx = px;
            hy = py;
            hz = 0.0 - tq;
            nx = (hx - cx) / radius;
            ny = (hy - cy) / radius;
            nz = (hz - cz) / radius;
          }
        }
      }
      // ground plane y = -0.7
      float32 tp = (py - (-0.7)) / 1.0;
      if (tp > 0.0 && tp < best) {
        best = tp;
        hit = true;
        hx = px;
        hy = -0.7;
        hz = 0.0 - tp;
        nx = 0.0;
        ny = 1.0;
        nz = 0.0;
      }
      float32 occ = 0.0;
      if (hit) {
        // 8 fixed hemisphere samples around the normal
        for (int32 k = 0; k < 8; k = k + 1) {
          float32 a = (float32)k * 0.785398;
          float32 dx0 = cosf(a) * 0.7;
          float32 dz0 = sinf(a) * 0.7;
          float32 dy0 = 0.714;
          // flip into the normal's hemisphere
          float32 dotn = dx0 * nx + dy0 * ny + dz0 * nz;
          float32 sdx = dotn < 0.0 ? 0.0 - dx0 : dx0;
          float32 sdy = dotn < 0.0 ? 0.0 - dy0 : dy0;
          float32 sdz = dotn < 0.0 ? 0.0 - dz0 : dz0;
          // occlusion test against the spheres
          for (int32 s = 0; s < 3; s = s + 1) {
            float32 cx = (float32)(s - 1) * 1.0;
            float32 cz = -2.0 - (float32)s * 0.4;
            float32 ox = hx - cx;
            float32 oy = hy - 0.0;
            float32 oz = hz - cz;
            float32 bq = ox * sdx + oy * sdy + oz * sdz;
            float32 cq = ox * ox + oy * oy + oz * oz - 0.25;
            float32 disc = bq * bq - cq;
            if (disc > 0.0 && (0.0 - bq - sqrtf(disc)) > 0.001) {
              occ = occ + 0.125;
            }
          }
        }
      }
      float32 shade = hit ? 1.0 - occ : 0.0;
      img[y * %d + x] = shade;|}
      ao_w ao_h ao_w
  in
  let wrap kind =
    if kind = `Serial then
      Fmt.str
        {|
void aobench(float32* restrict img, int64 w, int64 h) {
  for (int64 y = 0; y < h; y = y + 1) {
    for (int64 x = 0; x < w; x = x + 1) {
%s
    }
  }
}
|}
        body
    else
      Fmt.str
        {|
void aobench(float32* img, int64 w, int64 h) {
  for (int64 y = 0; y < h; y = y + 1) {
    psim gang_size(16) num_spmd_threads(w) {
      int64 x = psim_thread_num();
%s
    }
  }
}
|}
        body
  in
  mk ~name:"aobench" ~family:"ispc" ~gang:16 ~serial:(wrap `Serial)
    ~psim:(wrap `Psim)
    ~buffers:[ f32outbuf "img" (ao_w * ao_h) ]
    ~scalars:[ vi ao_w; vi ao_h ]
    ~tol:1e-5

(* -- 7. volume: ray marching with early termination and gathers -- *)

let vol_w = 48
let vol_h = 16
let vol_grid = 32

let volume =
  let body =
    Fmt.str
      {|
      float32 sx = (float32)(int32)x * (%d.0 / %d.0);
      float32 sy = (float32)(int32)y * (%d.0 / %d.0);
      float32 pz = 0.0;
      float32 acc = 0.0;
      float32 trans = 1.0;
      int32 step = 0;
      while (step < 24) {
        if (trans < 0.05) { break; }
        int32 gx = (int32)sx & (%d - 1);
        int32 gy = (int32)sy & (%d - 1);
        int32 gz = (int32)pz & (%d - 1);
        float32 density = (float32)(int32)grid[(int64)((gz * %d + gy) * %d + gx)] * 0.00392;
        float32 a = density * 0.35;
        acc = acc + trans * a;
        trans = trans * (1.0 - a);
        pz = pz + 1.0;
        sx = sx + 0.3;
        sy = sy + 0.15;
        step = step + 1;
      }
      img[y * %d + x] = acc;|}
      vol_grid vol_w vol_grid vol_h vol_grid vol_grid vol_grid vol_grid
      vol_grid vol_w
  in
  let serial =
    Fmt.str
      {|
void volume(uint8* restrict grid, float32* restrict img, int64 w, int64 h) {
  for (int64 y = 0; y < h; y = y + 1) {
    for (int64 x = 0; x < w; x = x + 1) {
%s
    }
  }
}
|}
      body
  in
  let psim =
    Fmt.str
      {|
void volume(uint8* grid, float32* img, int64 w, int64 h) {
  for (int64 y = 0; y < h; y = y + 1) {
    psim gang_size(16) num_spmd_threads(w) {
      int64 x = psim_thread_num();
%s
    }
  }
}
|}
      body
  in
  mk ~name:"volume" ~family:"ispc" ~gang:16 ~serial ~psim
    ~buffers:
      [
        { bname = "grid"; elem = Pir.Types.I8; len = vol_grid * vol_grid * vol_grid; init = u8 740; output = false };
        f32outbuf "img" (vol_w * vol_h);
      ]
    ~scalars:[ vi vol_w; vi vol_h ]
    ~tol:1e-5

let all =
  [ aobench; binomial_options; black_scholes; mandelbrot; noise; stencil; volume ]
