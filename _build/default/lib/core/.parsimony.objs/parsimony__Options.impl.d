lib/core/options.ml:
