lib/core/simplify.ml: Fmt Func Hashtbl Instr Intrinsics List Option Pir Printer Types
