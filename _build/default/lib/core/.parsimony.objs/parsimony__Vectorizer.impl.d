lib/core/vectorizer.ml: Array Builder Fmt Func Hashtbl Instr Int64 Intrinsics Ints List Logs Option Options Panalysis Pir Printer Pshapes Types
