(** Shape analysis (paper §4.2.2).

    Every SSA value of an SPMD function is classified as either

    - [Indexed offsets]: representable as a thread-invariant scalar base
      plus the given compile-time per-lane offsets.  The base is what the
      transformed function will compute in a scalar register; the offsets
      are compiler metadata.  *Uniform* values are indexed with all-zero
      offsets; *strided* values are indexed with [i*stride] offsets — the
      broader indexed category captures more patterns than either.

    - [Varying]: everything else; stored as a vector value in the
      transformed IR.

    The analysis runs an optimistic iterative dataflow: unknown values
    start at bottom, transfer functions consult the verified
    transformation rules of [Psmt.Rules] (with [Psmt.Facts] tracked per
    base), and speculation on loop-carried values is recomputed until a
    fixpoint, as the paper describes.

    Divergence constraints are folded in through the region tree:

    - phis at the join of a varying-condition [if] become [Varying]
      (they turn into per-lane selects) unless both arms carry the
      identical value;
    - in a loop whose exit condition is varying, loop-carried phis and
      any header-defined value live past the loop become [Varying]
      (they need per-lane exit blending). *)

type shape = Indexed of int64 array | Varying

let uniform gang = Indexed (Array.make gang 0L)
let lane_iota gang = Indexed (Array.init gang Int64.of_int)
let is_uniform = function Indexed o -> Array.for_all (fun x -> x = 0L) o | Varying -> false

let is_indexed = function Indexed _ -> true | Varying -> false

(** Constant stride if the offsets form an arithmetic progression. *)
let stride_of = function
  | Varying -> None
  | Indexed o ->
      if Array.length o < 2 then Some 0L
      else
        let d = Int64.sub o.(1) o.(0) in
        let ok = ref true in
        Array.iteri (fun i x -> if Int64.sub x o.(0) <> Int64.mul (Int64.of_int i) d then ok := false) o;
        if !ok then Some d else None

let pp_shape ppf = function
  | Varying -> Fmt.string ppf "varying"
  | Indexed o when Array.for_all (fun x -> x = 0L) o -> Fmt.string ppf "uniform"
  | Indexed o -> Fmt.pf ppf "indexed<%a>" Fmt.(array ~sep:(any ",") int64) o

type info = {
  gang : int;
  shapes : (int, shape) Hashtbl.t;
  facts : (int, Psmt.Facts.t) Hashtbl.t;
  rule_hits : (string, int) Hashtbl.t;  (** which rules fired, for reports *)
}

let shape_of info (o : Pir.Instr.operand) : shape =
  match o with
  | Pir.Instr.Const _ -> uniform info.gang
  | Pir.Instr.Var v -> (
      match Hashtbl.find_opt info.shapes v with Some s -> s | None -> Varying)

let facts_of info (o : Pir.Instr.operand) : Psmt.Facts.t =
  match o with
  | Pir.Instr.Const (Pir.Instr.Cint (s, v)) ->
      Psmt.Facts.of_const (Pir.Types.scalar_bits s) v
  | Pir.Instr.Const _ -> Psmt.Facts.top
  | Pir.Instr.Var v ->
      Option.value ~default:Psmt.Facts.top (Hashtbl.find_opt info.facts v)

(* -- internal analysis state -- *)

type cell = Bot | Known of shape

let join_shape a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Known Varying, _ | _, Known Varying -> Known Varying
  | Known (Indexed x), Known (Indexed y) ->
      if x = y then Known (Indexed x) else Known Varying

let width_of_ty (ty : Pir.Types.t) =
  match ty with
  | Pir.Types.Ptr _ -> 64
  | Pir.Types.Scalar s | Pir.Types.Vec (s, _) -> Pir.Types.scalar_bits s
  | Pir.Types.Void -> 64

exception Not_spmd of string

(** Analyze an SPMD-annotated scalar function. *)
let analyze (f : Pir.Func.t) : info =
  let gang =
    match f.spmd with
    | Some s -> s.Pir.Func.gang_size
    | None -> raise (Not_spmd f.fname)
  in
  let regions = Panalysis.Regions.of_func f in
  let info =
    {
      gang;
      shapes = Hashtbl.create 64;
      facts = Hashtbl.create 64;
      rule_hits = Hashtbl.create 16;
    }
  in
  let cells : (int, cell) Hashtbl.t = Hashtbl.create 64 in
  let fcts : (int, Psmt.Facts.t) Hashtbl.t = Hashtbl.create 64 in
  let forced : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let cell_of_operand (o : Pir.Instr.operand) =
    match o with
    | Pir.Instr.Const _ -> Known (uniform gang)
    | Pir.Instr.Var v -> Option.value ~default:Bot (Hashtbl.find_opt cells v)
  in
  let facts_of_operand (o : Pir.Instr.operand) =
    match o with
    | Pir.Instr.Const (Pir.Instr.Cint (s, v)) ->
        Psmt.Facts.of_const (Pir.Types.scalar_bits s) v
    | Pir.Instr.Const _ -> Psmt.Facts.top
    | Pir.Instr.Var v -> Option.value ~default:Psmt.Facts.top (Hashtbl.find_opt fcts v)
  in
  (* parameters: thread-invariant by construction (captured by the
     front-end, identical for every thread of the gang) *)
  List.iter
    (fun (v, _) ->
      Hashtbl.replace cells v (Known (uniform gang));
      Hashtbl.replace fcts v Psmt.Facts.top)
    f.params;
  let widen_mode = ref false in
  let is_uniform_cell = function Known s -> is_uniform s | Bot -> false in
  (* pointers rooted at an alloca (SoA-laid-out private storage) *)
  let alloca_rooted : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let () =
    let changed = ref true in
    while !changed do
      changed := false;
      Pir.Func.iter_instrs f (fun _ i ->
          if not (Hashtbl.mem alloca_rooted i.Pir.Instr.id) then
            match i.Pir.Instr.op with
            | Pir.Instr.Alloca _ ->
                Hashtbl.replace alloca_rooted i.Pir.Instr.id ();
                changed := true
            | Pir.Instr.Gep (Pir.Instr.Var p, _) when Hashtbl.mem alloca_rooted p ->
                Hashtbl.replace alloca_rooted i.Pir.Instr.id ();
                changed := true
            | _ -> ())
    done
  in
  let is_alloca_rooted (o : Pir.Instr.operand) =
    match o with
    | Pir.Instr.Var v -> Hashtbl.mem alloca_rooted v
    | _ -> false
  in
  (* transfer function: shape and base-facts of one instruction *)
  let transfer (i : Pir.Instr.instr) : cell * Psmt.Facts.t =
    let open Pir.Instr in
    let w = width_of_ty i.ty in
    let var_forced = Hashtbl.mem forced i.id in
    let res =
      match i.op with
      | Ibin (k, a, b) -> (
          match (cell_of_operand a, cell_of_operand b) with
          | Bot, _ | _, Bot -> (Bot, Psmt.Facts.top)
          | Known Varying, _ | _, Known Varying ->
              (Known Varying, Psmt.Facts.top)
          | Known (Indexed oa), Known (Indexed ob) -> (
              let arg_a = { Psmt.Rules.offsets = oa; facts = facts_of_operand a } in
              let arg_b = { Psmt.Rules.offsets = ob; facts = facts_of_operand b } in
              let fr = Psmt.Facts.ibin k w arg_a.facts arg_b.facts in
              match Psmt.Rules.try_apply ~w k arg_a arg_b with
              | Some (rule, offsets) ->
                  Hashtbl.replace info.rule_hits rule
                    (1 + Option.value ~default:0 (Hashtbl.find_opt info.rule_hits rule));
                  (Known (Indexed (Array.map (Pir.Ints.norm w) offsets)), fr)
              | None ->
                  (* no rule: still fine if both operands are uniform —
                     the same scalar op on the bases is the value *)
                  if Array.for_all (fun x -> x = 0L) oa && Array.for_all (fun x -> x = 0L) ob
                  then (Known (uniform gang), fr)
                  else (Known Varying, Psmt.Facts.top)))
      | Iun (k, a) -> (
          match cell_of_operand a with
          | Bot -> (Bot, Psmt.Facts.top)
          | Known Varying -> (Known Varying, Psmt.Facts.top)
          | Known (Indexed oa) -> (
              match k with
              | INot | INeg ->
                  (* not(b+o) = not(b) + (-o); neg(b+o) = neg(b) + (-o) *)
                  ( Known (Indexed (Array.map (fun o -> Pir.Ints.neg w o) oa)),
                    Psmt.Facts.top )
              | _ ->
                  if Array.for_all (fun x -> x = 0L) oa then
                    (Known (uniform gang), Psmt.Facts.top)
                  else (Known Varying, Psmt.Facts.top)))
      | Fbin (_, a, b) | Fcmp (_, a, b) -> (
          match (cell_of_operand a, cell_of_operand b) with
          | Bot, _ | _, Bot -> (Bot, Psmt.Facts.top)
          | Known sa, Known sb ->
              if is_uniform sa && is_uniform sb then
                (Known (uniform gang), Psmt.Facts.top)
              else (Known Varying, Psmt.Facts.top))
      | Fun (_, a) -> (
          match cell_of_operand a with
          | Bot -> (Bot, Psmt.Facts.top)
          | Known s ->
              if is_uniform s then (Known (uniform gang), Psmt.Facts.top)
              else (Known Varying, Psmt.Facts.top))
      | Icmp (_, a, b) -> (
          match (cell_of_operand a, cell_of_operand b) with
          | Bot, _ | _, Bot -> (Bot, Psmt.Facts.top)
          | Known sa, Known sb ->
              if is_uniform sa && is_uniform sb then
                (Known (uniform gang), Psmt.Facts.top)
              else (Known Varying, Psmt.Facts.top))
      | Select (c, a, b) -> (
          match (cell_of_operand c, cell_of_operand a, cell_of_operand b) with
          | Bot, _, _ | _, Bot, _ | _, _, Bot -> (Bot, Psmt.Facts.top)
          | Known sc, Known sa, Known sb ->
              if is_uniform sc then
                match join_shape (Known sa) (Known sb) with
                | Known (Indexed o) ->
                    ( Known (Indexed o),
                      Psmt.Facts.join (facts_of_operand a) (facts_of_operand b) )
                | s -> (s, Psmt.Facts.top)
              else (Known Varying, Psmt.Facts.top))
      | Cast (k, a, _) -> (
          match cell_of_operand a with
          | Bot -> (Bot, Psmt.Facts.top)
          | Known Varying -> (Known Varying, Psmt.Facts.top)
          | Known (Indexed oa) -> (
              let src_w = width_of_ty (Pir.Func.ty_of_operand f a) in
              let fa = facts_of_operand a in
              let fr = Psmt.Facts.cast k ~ws:src_w ~wd:w fa in
              match k with
              | Trunc ->
                  (* modular arithmetic: offsets renormalize at the
                     destination width, unconditionally sound *)
                  (Known (Indexed (Array.map (Pir.Ints.norm w) oa)), fr)
              | ZExt ->
                  (* sound when base + max offset cannot wrap at the
                     source width *)
                  let max_off = Psmt.Rules.max_offset src_w oa in
                  if Psmt.Facts.max_plus_fits fa max_off src_w then
                    (Known (Indexed oa), fr)
                  else if Array.for_all (fun x -> x = 0L) oa then
                    (Known (uniform gang), fr)
                  else (Known Varying, Psmt.Facts.top)
              | SExt ->
                  (* sound when base + max offset stays in the
                     non-negative signed range at the source width *)
                  let max_off = Psmt.Rules.max_offset src_w oa in
                  if Psmt.Facts.max_plus_fits fa max_off (src_w - 1) then
                    (Known (Indexed oa), fr)
                  else if Array.for_all (fun x -> x = 0L) oa then
                    (Known (uniform gang), fr)
                  else (Known Varying, Psmt.Facts.top)
              | _ ->
                  if Array.for_all (fun x -> x = 0L) oa then
                    (Known (uniform gang), Psmt.Facts.top)
                  else (Known Varying, Psmt.Facts.top)))
      | Alloca (s, _) ->
          (* private per-thread storage is laid out struct-of-arrays
             (element j of thread i lives at base + (j*G + i) * esz), so
             accesses at a uniform index are packed loads/stores — the
             swizzling ispc performs on varying arrays (paper §4.2.3
             notes AoS layouts would gather/scatter) *)
          let esz = Pir.Types.scalar_bytes s in
          ( Known (Indexed (Array.init gang (fun i -> Int64.of_int (i * esz)))),
            { Psmt.Facts.top with Psmt.Facts.align = 6 } )
      | Gep (p, idx) when is_alloca_rooted p -> (
          (* SoA addressing: uniform indices preserve the lane-strided
             shape; anything else needs per-lane addresses *)
          match (cell_of_operand p, cell_of_operand idx) with
          | Bot, _ | _, Bot -> (Bot, Psmt.Facts.top)
          | Known (Indexed op_), Known s when is_uniform s ->
              (Known (Indexed op_), Psmt.Facts.top)
          | _ -> (Known Varying, Psmt.Facts.top))
      | Gep (p, idx) -> (
          match (cell_of_operand p, cell_of_operand idx) with
          | Bot, _ | _, Bot -> (Bot, Psmt.Facts.top)
          | Known (Indexed op_), Known (Indexed oi) ->
              let esz =
                match Pir.Func.ty_of_operand f p with
                | Pir.Types.Ptr s -> Int64.of_int (Pir.Types.scalar_bytes s)
                | _ -> 1L
              in
              (* pointer offsets are tracked in bytes *)
              ( Known
                  (Indexed
                     (Array.init gang (fun l ->
                          Pir.Ints.add 64 op_.(l) (Int64.mul oi.(l) esz)))),
                Psmt.Facts.top )
          | _ -> (Known Varying, Psmt.Facts.top))
      | Load p -> (
          match cell_of_operand p with
          | Bot -> (Bot, Psmt.Facts.top)
          | Known s when is_uniform s ->
              (* same address in every thread: stays a scalar load *)
              (Known (uniform gang), Psmt.Facts.top)
          | Known _ -> (Known Varying, Psmt.Facts.top))
      | Store _ | VStore _ | Scatter _ -> (Known (uniform gang), Psmt.Facts.top)
      | Call (name, args) ->
          if name = Pir.Intrinsics.lane_num then
            (Known (lane_iota gang), Psmt.Facts.of_const 64 0L)
          else if name = Pir.Intrinsics.gang_sync then
            (Known (uniform gang), Psmt.Facts.top)
          else if
            Pir.Intrinsics.is_math name
            && List.for_all (fun a -> is_uniform_cell (cell_of_operand a)) args
          then (Known (uniform gang), Psmt.Facts.top)
          else if
            Pir.Intrinsics.is_math name
            && List.exists (fun a -> cell_of_operand a = Bot) args
          then (Bot, Psmt.Facts.top)
          else (Known Varying, Psmt.Facts.top)
      | Phi incoming ->
          let c =
            List.fold_left
              (fun acc (_, o) -> join_shape acc (cell_of_operand o))
              Bot incoming
          in
          let fr =
            List.fold_left
              (fun acc (_, o) ->
                match acc with
                | None -> Some (facts_of_operand o)
                | Some fs -> Some (Psmt.Facts.join fs (facts_of_operand o)))
              None incoming
            |> Option.value ~default:Psmt.Facts.top
          in
          let fr = if !widen_mode then Psmt.Facts.widen fr else fr in
          (c, fr)
      | Splat _ | VLoad _ | Gather _ | Shuffle _ | ShuffleDyn _ | ExtractLane _
      | InsertLane _ | Reduce _ | FirstLane _ | Psadbw _ ->
          (* explicit vector operations only appear in already-vectorized
             code; treat as varying if they somehow occur *)
          (Known Varying, Psmt.Facts.top)
    in
    if var_forced then (Known Varying, Psmt.Facts.top) else res
  in
  (* one dataflow run to fixpoint under the current forcing set *)
  let run_dataflow () =
    Hashtbl.reset cells;
    Hashtbl.reset fcts;
    List.iter
      (fun (v, _) ->
        Hashtbl.replace cells v (Known (uniform gang));
        Hashtbl.replace fcts v Psmt.Facts.top)
      f.params;
    let pass = ref 0 in
    let changed = ref true in
    while !changed && !pass < 60 do
      incr pass;
      widen_mode := !pass > 6;
      changed := false;
      List.iter
        (fun (b : Pir.Func.block) ->
          List.iter
            (fun (i : Pir.Instr.instr) ->
              if i.ty <> Pir.Types.Void then begin
                let c, fr = transfer i in
                let c0 = Option.value ~default:Bot (Hashtbl.find_opt cells i.id) in
                let f0 =
                  Option.value ~default:Psmt.Facts.top (Hashtbl.find_opt fcts i.id)
                in
                (* monotone update: never climb back above the join *)
                let c = join_shape c0 c in
                if c <> c0 || not (Psmt.Facts.equal fr f0) then begin
                  Hashtbl.replace cells i.id c;
                  Hashtbl.replace fcts i.id fr;
                  changed := true
                end
              end)
            b.instrs)
        f.blocks
    done;
    if !changed then
      (* did not converge: conservatively mark everything varying *)
      List.iter
        (fun (b : Pir.Func.block) ->
          List.iter
            (fun (i : Pir.Instr.instr) ->
              if i.ty <> Pir.Types.Void then Hashtbl.replace cells i.id (Known Varying))
            b.instrs)
        f.blocks
  in
  (* divergence forcing loop: add constraints from varying conditionals
     and varying-exit loops until stable *)
  let shape_cell v = Option.value ~default:Bot (Hashtbl.find_opt cells v) in
  let operand_varying (o : Pir.Instr.operand) =
    match o with
    | Pir.Instr.Const _ -> false
    | Pir.Instr.Var v -> (
        match shape_cell v with Known Varying -> true | _ -> false)
  in
  let defined_in_blocks blocks =
    let s = Hashtbl.create 32 in
    List.iter
      (fun (b : Pir.Func.block) ->
        List.iter (fun (i : Pir.Instr.instr) -> Hashtbl.replace s i.id ()) b.instrs)
      blocks;
    s
  in
  let rec collect_constraints regions : (unit -> bool) list =
    List.concat_map
      (fun (r : Panalysis.Regions.region) ->
        match r with
        | Panalysis.Regions.Basic _ -> []
        | Panalysis.Regions.If { cond; then_; else_; join } ->
            let join_block = Pir.Func.find_block f join in
            let constr () =
              if operand_varying cond then
                List.fold_left
                  (fun acc (i : Pir.Instr.instr) ->
                    match i.op with
                    | Pir.Instr.Phi incoming
                      when not (Hashtbl.mem forced i.id) ->
                        let vals = List.map snd incoming in
                        let identical =
                          match vals with
                          | v :: rest -> List.for_all (Pir.Instr.equal_operand v) rest
                          | [] -> true
                        in
                        if not identical then begin
                          if Sys.getenv_opt "PSHAPES_DEBUG" <> None then
                            Fmt.epr "[shapes] forcing if-join phi %%%d@." i.id;
                          Hashtbl.replace forced i.id ();
                          true
                        end
                        else acc
                    | _ -> acc)
                  false join_block.instrs
              else false
            in
            (constr :: collect_constraints then_) @ collect_constraints else_
        | Panalysis.Regions.Loop { header; cond; body; _ } ->
            let body_blocks = Panalysis.Regions.blocks_of_regions body in
            let loop_defs = defined_in_blocks (header :: body_blocks) in
            let constr () =
              if operand_varying cond then begin
                let any = ref false in
                (* loop-carried phis *)
                List.iter
                  (fun (i : Pir.Instr.instr) ->
                    match i.op with
                    | Pir.Instr.Phi _ when not (Hashtbl.mem forced i.id) ->
                        if Sys.getenv_opt "PSHAPES_DEBUG" <> None then
                          Fmt.epr "[shapes] forcing loop phi %%%d (cond varying)@." i.id;
                        Hashtbl.replace forced i.id ();
                        any := true
                    | _ -> ())
                  header.instrs;
                (* header-defined values live past the loop need per-lane
                   exit blending: force any loop definition that is used
                   by an instruction outside the loop *)
                let loop_block_names =
                  List.map
                    (fun (b : Pir.Func.block) -> b.bname)
                    (header :: body_blocks)
                in
                let force_use u =
                  if Hashtbl.mem loop_defs u && not (Hashtbl.mem forced u) then begin
                    if Sys.getenv_opt "PSHAPES_DEBUG" <> None then
                      Fmt.epr "[shapes] forcing live-out %%%d@." u;
                    Hashtbl.replace forced u ();
                    any := true
                  end
                in
                List.iter
                  (fun (b : Pir.Func.block) ->
                    if not (List.mem b.bname loop_block_names) then begin
                      List.iter
                        (fun (i : Pir.Instr.instr) ->
                          List.iter force_use (Pir.Instr.uses_of_op i.op))
                        b.instrs;
                      List.iter
                        (function Pir.Instr.Var u -> force_use u | _ -> ())
                        (Pir.Instr.operands_of_term b.term)
                    end)
                  f.blocks;
                !any
              end
              else false
            in
            constr :: collect_constraints body)
      regions
  in
  let constraints = collect_constraints regions in
  let rec iterate n =
    run_dataflow ();
    if Sys.getenv_opt "PSHAPES_NOFORCE" <> None then ()
    else
      let changed = List.fold_left (fun acc c -> if c () then true else acc) false constraints in
      if changed && n < 20 then iterate (n + 1)
  in
  iterate 0;
  (* export *)
  Pir.Func.iter_instrs f (fun _ i ->
      if i.ty <> Pir.Types.Void then begin
        (match shape_cell i.id with
        | Bot ->
            (* unreachable / dead value: any classification is sound *)
            Hashtbl.replace info.shapes i.id (uniform gang)
        | Known s -> Hashtbl.replace info.shapes i.id s);
        Hashtbl.replace info.facts i.id
          (Option.value ~default:Psmt.Facts.top (Hashtbl.find_opt fcts i.id))
      end);
  List.iter
    (fun (v, _) ->
      Hashtbl.replace info.shapes v (uniform gang);
      Hashtbl.replace info.facts v Psmt.Facts.top)
    f.params;
  info
