lib/shapes/shapes.ml: Array Fmt Hashtbl Int64 List Option Panalysis Pir Psmt Sys
