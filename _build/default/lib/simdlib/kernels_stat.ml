(** Reduction kernels (sums, counts, statistics).

    Serial code expresses these as scalar accumulator loops (the
    auto-vectorizer reduces at the 64-bit accumulator width, VF=8).
    The Parsimony ports reduce across the gang with explicit horizontal
    operations — butterfly exchanges via [psim_shuffle], and the
    [psim_sad_u8] abstraction of AVX-512's [vpsadbw] (paper §7) for
    byte-absolute-difference sums.  Hand-written versions use vector
    accumulators and [psadbw] directly. *)

open Workload

let gangs = pixels / 64

let partial_buf =
  { bname = "partial"; elem = Pir.Types.I64; len = gangs + width; init = zero64; output = false }

(* butterfly add across the 64-lane gang *)
let butterfly_add =
  {|
    uint64 off = 32;
    while (off > 0) {
      acc = acc + psim_shuffle(acc, l ^ off);
      off = off >> 1;
    }|}

(* per-lane strided accumulation: lane l sums elements l, l+64, ... then
   one butterfly combines the gang (requires 64 | n, which the workload
   guarantees) *)
let psim_loop_sum ~ins ~expr =
  Fmt.str
    {|
  psim gang_size(64) num_spmd_threads(64) {
    uint64 l = psim_lane_num();
    uint64 acc = 0;
    for (int64 k = 0; k < n / 64; k = k + 1) {
      int64 i = k * 64 + (int64)l;
      acc = acc + (%s);
    }
%s
    out[0] = acc;
  }|}
    expr butterfly_add
  |> fun body ->
  Fmt.str
    {|
void %%s(%s, uint64* partial, uint64* out, int64 n) {
%s
}
|}
    ins body

(* u8 contributions can be summed with the vpsadbw abstraction: every
   lane of an 8-lane group carries the group sum, so the final butterfly
   over-counts by exactly 8 *)
let psim_sad_sum ~ins ~expr_u8 =
  Fmt.str
    {|
  psim gang_size(64) num_spmd_threads(64) {
    uint64 l = psim_lane_num();
    uint64 acc = 0;
    for (int64 k = 0; k < n / 64; k = k + 1) {
      int64 i = k * 64 + (int64)l;
      uint8 contrib = %s;
      acc = acc + psim_sad_u8(contrib, 0);
    }
%s
    out[0] = acc >> 3;
  }|}
    expr_u8 butterfly_add
  |> fun body ->
  Fmt.str
    {|
void %%s(%s, uint64* partial, uint64* out, int64 n) {
%s
}
|}
    ins body

(* -- generic sum-over-pixels kernel -- *)

let sum_kernel ~name ~family ~inputs ?(sad = `Loop) ~serial_expr ~psim_expr
    ~hand () =
  let in_ptrs_serial =
    String.concat ", " (List.map (fun a -> Fmt.str "uint8* restrict %s" a) inputs)
  in
  let in_ptrs_psim =
    String.concat ", " (List.map (fun a -> Fmt.str "uint8* %s" a) inputs)
  in
  let serial_src =
    Fmt.str
      {|
void %s(%s, uint64* restrict partial, uint64* restrict out, int64 n) {
  uint64 acc = 0;
  for (int64 i = 0; i < n; i = i + 1) {
    acc = acc + (%s);
  }
  out[0] = acc;
}
|}
      name in_ptrs_serial serial_expr
  in
  let psim_template =
    match sad with
    | `Sad -> psim_sad_sum ~ins:in_ptrs_psim ~expr_u8:psim_expr
    | `Loop -> psim_loop_sum ~ins:in_ptrs_psim ~expr:psim_expr
  in
  let psim_src = replace_once ~sub:"%s" ~by:name psim_template in
  {
    kname = name;
    family;
    gang = 64;
    psim_src;
    serial_src;
    hand;
    buffers =
      List.mapi (fun idx a -> in_u8 a (400 + idx)) inputs
      @ [ partial_buf; out_u64 "out" 1 ];
    scalars = [ vi pixels ];
    float_tolerance = 0.0;
  }

(* hand reduction scaffold over u8 inputs at 16 lanes of i64-safe i32
   math; [vexpr] produces the per-lane i32 contribution *)
let hand_sum name ~inputs ~vexpr ~sexpr m =
  let open Pir in
  Hw.define m name
    ~ptrs:(List.init inputs (fun _ -> Types.I8) @ [ Types.I64; Types.I64 ])
    ~scalars:[]
    ~emit:(fun b ~ptrs ~scalars:_ ~n ->
      let ins = List.filteri (fun i _ -> i < inputs) ptrs in
      let out = List.nth ptrs (inputs + 1) in
      let vl = 16 in
      Hw.strip_mined_reduce b ~n ~vl
        ~acc_specs:
          [ (Types.Vec (Types.I64, vl), Instr.cvec Types.I64 (Array.make vl 0L)) ]
        ~reduce_kinds:[ Instr.RAdd ]
        ~vec_body:(fun b ~iv ~accs ->
          let vs =
            List.map
              (fun p ->
                Builder.cast b Instr.ZExt
                  (Builder.vload b (Builder.gep b p iv) vl)
                  (Types.Vec (Types.I32, vl)))
              ins
          in
          let contrib = vexpr b vs in
          let wide = Builder.cast b Instr.ZExt contrib (Types.Vec (Types.I64, vl)) in
          [ Builder.ibin b Instr.Add (List.hd accs) wide ])
        ~scalar_body:(fun b ~iv ~accs ->
          let vs =
            List.map
              (fun p ->
                Builder.cast b Instr.ZExt
                  (Builder.load b (Builder.gep b p iv))
                  Types.i32)
              ins
          in
          let contrib = sexpr b vs in
          let wide = Builder.cast b Instr.ZExt contrib Types.i64 in
          [ Builder.ibin b Instr.Add (List.hd accs) wide ])
        ~finish:(fun b finals ->
          Builder.store b (List.hd finals) (Builder.gep b out (Instr.ci64 0))))

let value_sum =
  sum_kernel ~name:"value_sum" ~family:"ValueSum" ~inputs:[ "a" ] ~sad:`Sad
    ~serial_expr:"(uint64)a[i]" ~psim_expr:"a[i]"
    ~hand:
      (Some
         (fun m ->
           (* sum of bytes = SAD against zero, the classic trick *)
           let open Pir in
           Hw.define m "value_sum" ~ptrs:[ Types.I8; Types.I64; Types.I64 ]
             ~scalars:[]
             ~emit:(fun b ~ptrs ~scalars:_ ~n ->
               let a = List.nth ptrs 0 and out = List.nth ptrs 2 in
               let vl = 64 in
               Hw.strip_mined_reduce b ~n ~vl
                 ~acc_specs:
                   [ (Types.Vec (Types.I64, 8), Instr.cvec Types.I64 (Array.make 8 0L)) ]
                 ~reduce_kinds:[ Instr.RAdd ]
                 ~vec_body:(fun b ~iv ~accs ->
                   let v = Builder.vload b (Builder.gep b a iv) vl in
                   let zero = Instr.cvec Types.I8 (Array.make vl 0L) in
                   let sums = Builder.psadbw b v zero in
                   [ Builder.ibin b Instr.Add (List.hd accs) sums ])
                 ~scalar_body:(fun b ~iv ~accs ->
                   let v =
                     Builder.cast b Instr.ZExt
                       (Builder.load b (Builder.gep b a iv))
                       Types.i64
                   in
                   [ Builder.ibin b Instr.Add (List.hd accs) v ])
                 ~finish:(fun b finals ->
                   Builder.store b (List.hd finals) (Builder.gep b out (Instr.ci64 0))))))
    ()

let square_sum =
  sum_kernel ~name:"square_sum" ~family:"SquareSum" ~inputs:[ "a" ]
    ~serial_expr:"(uint64)((int32)a[i] * (int32)a[i])"
    ~psim_expr:"(uint64)((int32)a[i] * (int32)a[i])"
    ~hand:
      (Some
         (hand_sum "square_sum" ~inputs:1
            ~vexpr:(fun b vs ->
              let v = List.hd vs in
              Pir.Builder.ibin b Pir.Instr.Mul v v)
            ~sexpr:(fun b vs ->
              let v = List.hd vs in
              Pir.Builder.ibin b Pir.Instr.Mul v v)))
    ()

let correlation_sum =
  sum_kernel ~name:"correlation_sum" ~family:"CorrelationSum"
    ~inputs:[ "a"; "b" ]
    ~serial_expr:"(uint64)((int32)a[i] * (int32)b[i])"
    ~psim_expr:"(uint64)((int32)a[i] * (int32)b[i])"
    ~hand:
      (Some
         (hand_sum "correlation_sum" ~inputs:2
            ~vexpr:(fun b vs ->
              Pir.Builder.ibin b Pir.Instr.Mul (List.nth vs 0) (List.nth vs 1))
            ~sexpr:(fun b vs ->
              Pir.Builder.ibin b Pir.Instr.Mul (List.nth vs 0) (List.nth vs 1))))
    ()

(* -- SAD: the vpsadbw story (paper §7) -- *)

let abs_difference_sum =
  let serial_src =
    {|
void abs_difference_sum(uint8* restrict a, uint8* restrict b, uint64* restrict partial, uint64* restrict out, int64 n) {
  uint64 acc = 0;
  for (int64 i = 0; i < n; i = i + 1) {
    int32 d = (int32)a[i] - (int32)b[i];
    acc = acc + (uint64)(d < 0 ? 0 - d : d);
  }
  out[0] = acc;
}
|}
  in
  let psim_src =
    {|
void abs_difference_sum(uint8* a, uint8* b, uint64* partial, uint64* out, int64 n) {
  psim gang_size(64) num_spmd_threads(64) {
    uint64 l = psim_lane_num();
    uint64 acc = 0;
    for (int64 k = 0; k < n / 64; k = k + 1) {
      int64 i = k * 64 + (int64)l;
      // per-8-lane-group sums of absolute differences (vpsadbw abstraction)
      acc = acc + psim_sad_u8(a[i], b[i]);
    }
    uint64 off = 32;
    while (off > 0) {
      acc = acc + psim_shuffle(acc, l ^ off);
      off = off >> 1;
    }
    // every lane of an 8-group carries the group sum
    out[0] = acc >> 3;
  }
}
|}
  in
  let hand m =
    let open Pir in
    Hw.define m "abs_difference_sum"
      ~ptrs:[ Types.I8; Types.I8; Types.I64; Types.I64 ]
      ~scalars:[]
      ~emit:(fun b ~ptrs ~scalars:_ ~n ->
        let a = List.nth ptrs 0
        and b' = List.nth ptrs 1
        and out = List.nth ptrs 3 in
        let vl = 64 in
        Hw.strip_mined_reduce b ~n ~vl
          ~acc_specs:
            [ (Types.Vec (Types.I64, 8), Instr.cvec Types.I64 (Array.make 8 0L)) ]
          ~reduce_kinds:[ Instr.RAdd ]
          ~vec_body:(fun b ~iv ~accs ->
            let va = Builder.vload b (Builder.gep b a iv) vl in
            let vb = Builder.vload b (Builder.gep b b' iv) vl in
            let sums = Builder.psadbw b va vb in
            [ Builder.ibin b Instr.Add (List.hd accs) sums ])
          ~scalar_body:(fun b ~iv ~accs ->
            let la =
              Builder.cast b Instr.ZExt (Builder.load b (Builder.gep b a iv)) Types.i64
            in
            let lb =
              Builder.cast b Instr.ZExt (Builder.load b (Builder.gep b b' iv)) Types.i64
            in
            [ Builder.ibin b Instr.Add (List.hd accs) (Builder.ibin b Instr.AbsDiffU la lb) ])
          ~finish:(fun b finals ->
            Builder.store b (List.hd finals) (Builder.gep b out (Instr.ci64 0))))
  in
  {
    kname = "abs_difference_sum";
    family = "AbsDifferenceSum";
    gang = 64;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers = [ in_u8 "a" 410; in_u8 "b" 411; partial_buf; out_u64 "out" 1 ];
    scalars = [ vi pixels ];
    float_tolerance = 0.0;
  }

let abs_difference_sum_masked =
  sum_kernel ~name:"abs_difference_sum_masked" ~family:"AbsDifferenceSum"
    ~inputs:[ "a"; "b"; "mask" ] ~sad:`Sad
    ~serial_expr:
      "(uint64)(mask[i] == 255 ? ((int32)a[i] > (int32)b[i] ? (int32)a[i] - (int32)b[i] : (int32)b[i] - (int32)a[i]) : 0)"
    ~psim_expr:"mask[i] == 255 ? absdiff_u(a[i], b[i]) : (uint8)0"
    ~hand:
      (Some
         (hand_sum "abs_difference_sum_masked" ~inputs:3
            ~vexpr:(fun b vs ->
              match vs with
              | [ a; b'; m ] ->
                  let vl = Pir.Types.lanes (Pir.Builder.ty_of b a) in
                  let d = Pir.Builder.ibin b Pir.Instr.AbsDiffU a b' in
                  let sel =
                    Pir.Builder.icmp b Pir.Instr.Eq m
                      (Pir.Instr.cvec Pir.Types.I32 (Array.make vl 255L))
                  in
                  Pir.Builder.select b sel d
                    (Pir.Instr.cvec Pir.Types.I32 (Array.make vl 0L))
              | _ -> assert false)
            ~sexpr:(fun b vs ->
              match vs with
              | [ a; b'; m ] ->
                  let d = Pir.Builder.ibin b Pir.Instr.AbsDiffU a b' in
                  let sel =
                    Pir.Builder.icmp b Pir.Instr.Eq m (Pir.Instr.ci32 255)
                  in
                  Pir.Builder.select b sel d (Pir.Instr.ci32 0)
              | _ -> assert false)))
    ()

(* -- conditional family -- *)

let conditional_count8u =
  sum_kernel ~name:"conditional_count8u" ~family:"Conditional" ~inputs:[ "a" ]
    ~sad:`Sad
    ~serial_expr:"(uint64)((int32)a[i] > 127 ? 1 : 0)"
    ~psim_expr:"a[i] > 127 ? (uint8)1 : (uint8)0"
    ~hand:
      (Some
         (hand_sum "conditional_count8u" ~inputs:1
            ~vexpr:(fun b vs ->
              let v = List.hd vs in
              let vl = Pir.Types.lanes (Pir.Builder.ty_of b v) in
              let c =
                Pir.Builder.icmp b Pir.Instr.Sgt v
                  (Pir.Instr.cvec Pir.Types.I32 (Array.make vl 127L))
              in
              Pir.Builder.select b c
                (Pir.Instr.cvec Pir.Types.I32 (Array.make vl 1L))
                (Pir.Instr.cvec Pir.Types.I32 (Array.make vl 0L)))
            ~sexpr:(fun b vs ->
              let c =
                Pir.Builder.icmp b Pir.Instr.Sgt (List.hd vs) (Pir.Instr.ci32 127)
              in
              Pir.Builder.select b c (Pir.Instr.ci32 1) (Pir.Instr.ci32 0))))
    ()

let conditional_sum =
  sum_kernel ~name:"conditional_sum" ~family:"Conditional" ~inputs:[ "a"; "b" ]
    ~sad:`Sad
    ~serial_expr:"(uint64)((int32)a[i] > 127 ? (int32)b[i] : 0)"
    ~psim_expr:"a[i] > 127 ? b[i] : (uint8)0"
    ~hand:
      (Some
         (hand_sum "conditional_sum" ~inputs:2
            ~vexpr:(fun b vs ->
              match vs with
              | [ a; b' ] ->
                  let vl = Pir.Types.lanes (Pir.Builder.ty_of b a) in
                  let c =
                    Pir.Builder.icmp b Pir.Instr.Sgt a
                      (Pir.Instr.cvec Pir.Types.I32 (Array.make vl 127L))
                  in
                  Pir.Builder.select b c b'
                    (Pir.Instr.cvec Pir.Types.I32 (Array.make vl 0L))
              | _ -> assert false)
            ~sexpr:(fun b vs ->
              match vs with
              | [ a; b' ] ->
                  let c = Pir.Builder.icmp b Pir.Instr.Sgt a (Pir.Instr.ci32 127) in
                  Pir.Builder.select b c b' (Pir.Instr.ci32 0)
              | _ -> assert false)))
    ()

let conditional_square_sum =
  sum_kernel ~name:"conditional_square_sum" ~family:"Conditional"
    ~inputs:[ "a"; "b" ]
    ~serial_expr:"(uint64)((int32)a[i] > 127 ? (int32)b[i] * (int32)b[i] : 0)"
    ~psim_expr:"(uint64)(a[i] > 127 ? (int32)b[i] * (int32)b[i] : 0)"
    ~hand:
      (Some
         (hand_sum "conditional_square_sum" ~inputs:2
            ~vexpr:(fun b vs ->
              match vs with
              | [ a; b' ] ->
                  let vl = Pir.Types.lanes (Pir.Builder.ty_of b a) in
                  let c =
                    Pir.Builder.icmp b Pir.Instr.Sgt a
                      (Pir.Instr.cvec Pir.Types.I32 (Array.make vl 127L))
                  in
                  let sq = Pir.Builder.ibin b Pir.Instr.Mul b' b' in
                  Pir.Builder.select b c sq
                    (Pir.Instr.cvec Pir.Types.I32 (Array.make vl 0L))
              | _ -> assert false)
            ~sexpr:(fun b vs ->
              match vs with
              | [ a; b' ] ->
                  let c = Pir.Builder.icmp b Pir.Instr.Sgt a (Pir.Instr.ci32 127) in
                  let sq = Pir.Builder.ibin b Pir.Instr.Mul b' b' in
                  Pir.Builder.select b c sq (Pir.Instr.ci32 0)
              | _ -> assert false)))
    ()

(* -- min / max / sum in one pass -- *)

let get_statistic =
  let serial_src =
    {|
void get_statistic(uint8* restrict a, uint64* restrict partial, uint64* restrict out, int64 n) {
  uint64 sum = 0;
  int64 mn = 255;
  int64 mx = 0;
  for (int64 i = 0; i < n; i = i + 1) {
    int64 v = (int64)a[i];
    sum = sum + (uint64)v;
    mn = v < mn ? v : mn;
    mx = v > mx ? v : mx;
  }
  out[0] = sum;
  out[1] = (uint64)mn;
  out[2] = (uint64)mx;
}
|}
  in
  let psim_src =
    {|
void get_statistic(uint8* a, uint64* partial, uint64* out, int64 n) {
  psim gang_size(64) num_spmd_threads(64) {
    uint64 l = psim_lane_num();
    uint64 acc = 0;
    uint8 mn = 255;
    uint8 mx = 0;
    for (int64 k = 0; k < n / 64; k = k + 1) {
      int64 i = k * 64 + (int64)l;
      uint8 v = a[i];
      acc = acc + psim_sad_u8(v, 0);
      mn = min(mn, v);
      mx = max(mx, v);
    }
    uint64 off = 32;
    while (off > 0) {
      acc = acc + psim_shuffle(acc, l ^ off);
      mn = min(mn, psim_shuffle(mn, l ^ off));
      mx = max(mx, psim_shuffle(mx, l ^ off));
      off = off >> 1;
    }
    out[0] = acc >> 3;
    out[1] = (uint64)mn;
    out[2] = (uint64)mx;
  }
}
|}
  in
  let hand m =
    let open Pir in
    Hw.define m "get_statistic" ~ptrs:[ Types.I8; Types.I64; Types.I64 ]
      ~scalars:[]
      ~emit:(fun b ~ptrs ~scalars:_ ~n ->
        let a = List.nth ptrs 0 and out = List.nth ptrs 2 in
        let vl = 64 in
        Hw.strip_mined_reduce b ~n ~vl
          ~acc_specs:
            [
              (Types.Vec (Types.I64, 8), Instr.cvec Types.I64 (Array.make 8 0L));
              (Types.Vec (Types.I8, vl), Instr.cvec Types.I8 (Array.make vl 255L));
              (Types.Vec (Types.I8, vl), Instr.cvec Types.I8 (Array.make vl 0L));
            ]
          ~reduce_kinds:[ Instr.RAdd; Instr.RUMin; Instr.RUMax ]
          ~vec_body:(fun b ~iv ~accs ->
            match accs with
            | [ s; mn; mx ] ->
                let v = Builder.vload b (Builder.gep b a iv) vl in
                let zero = Instr.cvec Types.I8 (Array.make vl 0L) in
                [
                  Builder.ibin b Instr.Add s (Builder.psadbw b v zero);
                  Builder.ibin b Instr.UMin mn v;
                  Builder.ibin b Instr.UMax mx v;
                ]
            | _ -> assert false)
          ~scalar_body:(fun b ~iv ~accs ->
            match accs with
            | [ s; mn; mx ] ->
                let v8 = Builder.load b (Builder.gep b a iv) in
                let v = Builder.cast b Instr.ZExt v8 Types.i64 in
                [
                  Builder.ibin b Instr.Add s v;
                  Builder.ibin b Instr.UMin mn v8;
                  Builder.ibin b Instr.UMax mx v8;
                ]
            | _ -> assert false)
          ~finish:(fun b finals ->
            match finals with
            | [ s; mn; mx ] ->
                Builder.store b s (Builder.gep b out (Instr.ci64 0));
                Builder.store b
                  (Builder.cast b Instr.ZExt mn Types.i64)
                  (Builder.gep b out (Instr.ci64 1));
                Builder.store b
                  (Builder.cast b Instr.ZExt mx Types.i64)
                  (Builder.gep b out (Instr.ci64 2))
            | _ -> assert false))
  in
  {
    kname = "get_statistic";
    family = "Statistic";
    gang = 64;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers =
      [ in_u8 "a" 420; { partial_buf with len = 3 * gangs }; out_u64 "out" 3 ];
    scalars = [ vi pixels ];
    float_tolerance = 0.0;
  }

(* -- column sums (per-column accumulation over rows) -- *)

let get_col_sums =
  let serial_src =
    {|
void get_col_sums(uint8* restrict src, uint32* restrict sums, int64 w, int64 h) {
  for (int64 y = 0; y < h; y = y + 1) {
    for (int64 x = 0; x < w; x = x + 1) {
      sums[x] = sums[x] + (uint32)src[y * w + x];
    }
  }
}
|}
  in
  let psim_src =
    {|
void get_col_sums(uint8* src, uint32* sums, int64 w, int64 h) {
  psim gang_size(16) num_spmd_threads(w) {
    int64 x = psim_thread_num();
    uint32 acc = 0;
    for (int64 y = 0; y < h; y = y + 1) {
      acc = acc + (uint32)src[y * w + x];
    }
    sums[x] = acc;
  }
}
|}
  in
  let hand m =
    let open Pir in
    Hw.define m "get_col_sums" ~ptrs:[ Types.I8; Types.I32 ]
      ~scalars:[ Types.i64 ]
      ~emit:(fun b ~ptrs ~scalars ~n ->
        let src, sums = match ptrs with [ s; d ] -> (s, d) | _ -> assert false in
        let w = List.hd scalars in
        let h = n in
        let vl = 16 in
        (* per column chunk: keep the accumulator in a register across
           rows (the workload width is a multiple of the vector length) *)
        ignore
          (Hw.counted_loop b ~start:(Instr.ci64 0) ~stop:w ~step:vl ~accs:[]
             ~body:(fun b ~iv:x ~accs ->
               let final =
                 Hw.counted_loop b ~start:(Instr.ci64 0) ~stop:h ~step:1
                   ~accs:
                     [ (Types.Vec (Types.I32, vl), Instr.cvec Types.I32 (Array.make vl 0L)) ]
                   ~body:(fun b ~iv:y ~accs ->
                     let row = Builder.gep b src (Builder.mul b y w) in
                     let v =
                       Builder.cast b Instr.ZExt
                         (Builder.vload b (Builder.gep b row x) vl)
                         (Types.Vec (Types.I32, vl))
                     in
                     [ Builder.ibin b Instr.Add (List.hd accs) v ])
               in
               let addr = Builder.gep b sums x in
               let cur = Builder.vload b addr vl in
               Builder.vstore b (Builder.ibin b Instr.Add cur (List.hd final)) addr;
               accs)))
  in
  {
    kname = "get_col_sums";
    family = "Statistic";
    gang = 16;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers =
      [
        in_u8 "src" 421;
        { bname = "sums"; elem = Pir.Types.I32; len = width; init = (fun _ -> Pmachine.Value.I 0L); output = true };
      ];
    scalars = [ vi width; vi height ];
    float_tolerance = 0.0;
  }

let get_abs_dy_col_sums =
  let serial_src =
    {|
void get_abs_dy_col_sums(uint8* restrict src, uint32* restrict sums, int64 w, int64 h) {
  for (int64 y = 0; y < h - 1; y = y + 1) {
    for (int64 x = 0; x < w; x = x + 1) {
      int32 d = (int32)src[(y + 1) * w + x] - (int32)src[y * w + x];
      sums[x] = sums[x] + (uint32)(d < 0 ? 0 - d : d);
    }
  }
}
|}
  in
  let psim_src =
    {|
void get_abs_dy_col_sums(uint8* src, uint32* sums, int64 w, int64 h) {
  psim gang_size(16) num_spmd_threads(w) {
    int64 x = psim_thread_num();
    uint32 acc = 0;
    for (int64 y = 0; y < h - 1; y = y + 1) {
      acc = acc + (uint32)absdiff_u(src[(y + 1) * w + x], src[y * w + x]);
    }
    sums[x] = acc;
  }
}
|}
  in
  let hand m =
    let open Pir in
    Hw.define m "get_abs_dy_col_sums" ~ptrs:[ Types.I8; Types.I32 ]
      ~scalars:[ Types.i64 ]
      ~emit:(fun b ~ptrs ~scalars ~n ->
        let src, sums = match ptrs with [ s; d ] -> (s, d) | _ -> assert false in
        let w = List.hd scalars in
        let h = n in
        let vl = 16 in
        ignore
          (Hw.counted_loop b ~start:(Instr.ci64 0) ~stop:w ~step:vl ~accs:[]
             ~body:(fun b ~iv:x ~accs ->
               let final =
                 Hw.counted_loop b ~start:(Instr.ci64 0)
                   ~stop:(Builder.sub b h (Instr.ci64 1))
                   ~step:1
                   ~accs:
                     [ (Types.Vec (Types.I32, vl), Instr.cvec Types.I32 (Array.make vl 0L)) ]
                   ~body:(fun b ~iv:y ~accs ->
                     let row = Builder.gep b src (Builder.mul b y w) in
                     let row1 =
                       Builder.gep b src
                         (Builder.mul b (Builder.add b y (Instr.ci64 1)) w)
                     in
                     let v0 = Builder.vload b (Builder.gep b row x) vl in
                     let v1 = Builder.vload b (Builder.gep b row1 x) vl in
                     let d =
                       Builder.cast b Instr.ZExt
                         (Builder.ibin b Instr.AbsDiffU v1 v0)
                         (Types.Vec (Types.I32, vl))
                     in
                     [ Builder.ibin b Instr.Add (List.hd accs) d ])
               in
               let addr = Builder.gep b sums x in
               let cur = Builder.vload b addr vl in
               Builder.vstore b (Builder.ibin b Instr.Add cur (List.hd final)) addr;
               accs)))
  in
  {
    kname = "get_abs_dy_col_sums";
    family = "Statistic";
    gang = 16;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers =
      [
        in_u8 "src" 422;
        { bname = "sums"; elem = Pir.Types.I32; len = width; init = (fun _ -> Pmachine.Value.I 0L); output = true };
      ];
    scalars = [ vi width; vi height ];
    float_tolerance = 0.0;
  }

(* -- Laplace magnitude sum over the interior (stencil + reduction) -- *)

let laplace_abs_sum =
  let serial_src =
    {|
void laplace_abs_sum(uint8* restrict src, uint64* restrict partial, uint64* restrict out, int64 w, int64 h) {
  uint64 acc = 0;
  for (int64 y = 1; y < h - 1; y = y + 1) {
    for (int64 x = 1; x < w - 1; x = x + 1) {
      int64 o = y * w + x;
      int32 g = 8 * (int32)src[o]
        - ((int32)src[o - w - 1] + (int32)src[o - w] + (int32)src[o - w + 1]
         + (int32)src[o - 1] + (int32)src[o + 1]
         + (int32)src[o + w - 1] + (int32)src[o + w] + (int32)src[o + w + 1]);
      acc = acc + (uint64)(g < 0 ? 0 - g : g);
    }
  }
  out[0] = acc;
}
|}
  in
  let psim_src =
    {|
void laplace_abs_sum(uint8* src, uint64* partial, uint64* out, int64 w, int64 h) {
  int64 gangs_per_row = (w - 2 + 63) / 64;
  for (int64 y = 1; y < h - 1; y = y + 1) {
    int64 rowbase = y * w;
    int64 prow = (y - 1) * gangs_per_row;
    psim gang_size(64) num_spmd_threads(w - 2) {
      int64 x = psim_thread_num() + 1;
      int64 o = rowbase + x;
      uint64 l = psim_lane_num();
      int32 g = 8 * (int32)src[o]
        - ((int32)src[o - w - 1] + (int32)src[o - w] + (int32)src[o - w + 1]
         + (int32)src[o - 1] + (int32)src[o + 1]
         + (int32)src[o + w - 1] + (int32)src[o + w] + (int32)src[o + w + 1]);
      uint64 v = (uint64)(g < 0 ? 0 - g : g);
      uint64 off = 32;
      while (off > 0) {
        v = v + psim_shuffle(v, l ^ off);
        off = off >> 1;
      }
      partial[prow + (int64)psim_gang_num()] = v;
    }
  }
  uint64 acc = 0;
  for (int64 p = 0; p < (h - 2) * gangs_per_row; p = p + 1) {
    acc = acc + partial[p];
  }
  out[0] = acc;
}
|}
  in
  let hand m =
    let open Pir in
    Hw.define m "laplace_abs_sum" ~ptrs:[ Types.I8; Types.I64; Types.I64 ]
      ~scalars:[ Types.i64 ]
      ~emit:(fun b ~ptrs ~scalars ~n ->
        let src = List.nth ptrs 0 and out = List.nth ptrs 2 in
        let w = List.hd scalars in
        let h = n in
        let vl = 16 in
        let total0 =
          Builder.ins b (Types.Vec (Types.I64, vl))
            (Instr.Splat (Instr.ci64 0, vl))
        in
        let final =
          Hw.counted_loop b ~start:(Instr.ci64 1)
            ~stop:(Builder.sub b h (Instr.ci64 1))
            ~step:1
            ~accs:[ (Types.Vec (Types.I64, vl), total0) ]
            ~body:(fun b ~iv:y ~accs ->
              let acc0 = List.hd accs in
              let rowbase = Builder.mul b y w in
              let xs = Builder.sub b w (Instr.ci64 2) in
              let xvec = Builder.and_ b xs (Instr.ci64 (lnot (vl - 1))) in
              let tap ~vector o off =
                let addr = Builder.gep b src (Builder.add b o (Instr.ci64 off)) in
                if vector then
                  Builder.cast b Instr.ZExt (Builder.vload b addr vl)
                    (Types.Vec (Types.I32, vl))
                else Builder.cast b Instr.ZExt (Builder.load b addr) Types.i32
              in
              let wd = Workload.width in
              let inner =
                Hw.counted_loop b ~start:(Instr.ci64 0) ~stop:xvec ~step:vl
                  ~accs:[ (Types.Vec (Types.I64, vl), acc0) ]
                  ~body:(fun b ~iv:x0 ~accs ->
                    let a = List.hd accs in
                    let x = Builder.add b x0 (Instr.ci64 1) in
                    let o = Builder.add b rowbase x in
                    let t = tap ~vector:true o in
                    let k v = Instr.cvec Types.I32 (Array.make vl v) in
                    let sum =
                      List.fold_left
                        (fun acc off -> Builder.ibin b Instr.Add acc (t off))
                        (t (-wd - 1))
                        [ -wd; -wd + 1; -1; 1; wd - 1; wd; wd + 1 ]
                    in
                    let g =
                      Builder.ibin b Instr.Sub
                        (Builder.ibin b Instr.Mul (k 8L) (t 0))
                        sum
                    in
                    let ag =
                      Builder.ibin b Instr.SMax g (Builder.ibin b Instr.Sub (k 0L) g)
                    in
                    let wide =
                      Builder.cast b Instr.ZExt ag (Types.Vec (Types.I64, vl))
                    in
                    [ Builder.ibin b Instr.Add a wide ])
              in
              let acc1 = List.hd inner in
              (* scalar tail of the row *)
              let tail =
                Hw.counted_loop b ~start:xvec ~stop:xs ~step:1
                  ~accs:[ (Types.Vec (Types.I64, vl), acc1) ]
                  ~body:(fun b ~iv:x0 ~accs ->
                    let a = List.hd accs in
                    let x = Builder.add b x0 (Instr.ci64 1) in
                    let o = Builder.add b rowbase x in
                    let t = tap ~vector:false o in
                    let sum =
                      List.fold_left
                        (fun acc off -> Builder.ibin b Instr.Add acc (t off))
                        (t (-wd - 1))
                        [ -wd; -wd + 1; -1; 1; wd - 1; wd; wd + 1 ]
                    in
                    let g =
                      Builder.ibin b Instr.Sub
                        (Builder.ibin b Instr.Mul (Instr.ci32 8) (t 0))
                        sum
                    in
                    let ag =
                      Builder.ibin b Instr.SMax g
                        (Builder.ibin b Instr.Sub (Instr.ci32 0) g)
                    in
                    let wide = Builder.cast b Instr.ZExt ag Types.i64 in
                    (* add into lane 0 of the vector accumulator *)
                    let lane0 = Builder.extract b a (Instr.ci32 0) in
                    [ Builder.insert b a (Builder.ibin b Instr.Add lane0 wide) (Instr.ci32 0) ])
              in
              tail)
        in
        let total = Builder.reduce b Instr.RAdd (List.hd final) in
        Builder.store b total (Builder.gep b out (Instr.ci64 0)))
  in
  {
    kname = "laplace_abs_sum";
    family = "Laplace";
    gang = 64;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers =
      [ in_u8 "src" 423; { partial_buf with len = height * 2 }; out_u64 "out" 1 ];
    scalars = [ vi width; vi height ];
    float_tolerance = 0.0;
  }

let kernels =
  [
    value_sum;
    square_sum;
    correlation_sum;
    abs_difference_sum;
    abs_difference_sum_masked;
    conditional_count8u;
    conditional_sum;
    conditional_square_sum;
    get_statistic;
    get_col_sums;
    get_abs_dy_col_sums;
    laplace_abs_sum;
  ]
