(** Neighborhood filters and geometric kernels: 3x3 stencils (blur,
    median, Sobel, Laplace), gradients, bilinear shift, and 2x2
    reduce/stretch.  Row-structured: the host iterates rows, the SPMD
    region covers the interior columns — packed loads at small constant
    offsets, the vectorizer's bread and butter. *)

open Workload

let u8img name seed = { bname = name; elem = Pir.Types.I8; len = pixels; init = u8 seed; output = false }
let u8outimg name = { bname = name; elem = Pir.Types.I8; len = pixels; init = zero8; output = true }
let i16outimg name = { bname = name; elem = Pir.Types.I16; len = pixels; init = zero16; output = true }

(* interior-only outputs: boundary pixels are left untouched by every
   implementation, so whole-buffer comparison remains valid *)

(* -- generic source templates for 3x3-neighborhood kernels -- *)

(* [expr_serial]/[expr_psim] compute the output from taps bound as
   pNM (N=row 0..2, M=col 0..2) around (y, x). *)
let stencil_srcs ~name ~out_ty ~gang ~decl_serial ~decl_psim ~store =
  let taps_serial =
    String.concat "\n"
      (List.concat_map
         (fun r ->
           List.map
             (fun c ->
               Fmt.str "    int32 p%d%d = (int32)src[o + %d + %d];" r c
                 ((r - 1) * width) (c - 1))
             [ 0; 1; 2 ])
         [ 0; 1; 2 ])
  in
  let taps_psim =
    String.concat "\n"
      (List.concat_map
         (fun r ->
           List.map
             (fun c ->
               Fmt.str "    int32 p%d%d = (int32)src[o + %d + %d];" r c
                 ((r - 1) * width) (c - 1))
             [ 0; 1; 2 ])
         [ 0; 1; 2 ])
  in
  let serial =
    Fmt.str
      {|
void %s(uint8* restrict src, %s* restrict dst, int64 w, int64 h) {
  for (int64 y = 1; y < h - 1; y = y + 1) {
    for (int64 x = 1; x < w - 1; x = x + 1) {
      int64 o = y * w + x;
%s
%s
      %s
    }
  }
}
|}
      name out_ty taps_serial decl_serial store
  in
  let psim =
    Fmt.str
      {|
void %s(uint8* src, %s* dst, int64 w, int64 h) {
  for (int64 y = 1; y < h - 1; y = y + 1) {
    int64 rowbase = y * w;
    psim gang_size(%d) num_spmd_threads(w - 2) {
      int64 x = psim_thread_num() + 1;
      int64 o = rowbase + x;
%s
%s
      %s
    }
  }
}
|}
      name out_ty gang taps_psim decl_psim store
  in
  (serial, psim)

(* polymorphic tap context so each hand-written kernel formula is
   written once and instantiated for the vector loop and scalar tail *)
type taps = {
  tap : int -> int -> Pir.Instr.operand;  (** widened (i32) tap r, c in 0..2 *)
  k : int -> Pir.Instr.operand;  (** i32 constant *)
  bin : Pir.Instr.ibin -> Pir.Instr.operand -> Pir.Instr.operand -> Pir.Instr.operand;
  store_u8 : Pir.Instr.operand -> unit;  (** clamp-free narrow store *)
  store_i16 : Pir.Instr.operand -> unit;
}

(* hand implementation scaffold: (src: u8*, dst: out*, w, h=n) *)
let hand_stencil ~name ~out_elem ~formula m =
  let open Pir in
  Hw.define m name ~ptrs:[ Types.I8; out_elem ] ~scalars:[ Types.i64 ]
    ~emit:(fun b ~ptrs ~scalars ~n ->
      let src, dst = match ptrs with [ s; d ] -> (s, d) | _ -> assert false in
      let w = List.hd scalars in
      let h = n in
      let vl = 16 in
      (* rows [1, h-1) *)
      ignore
        (Hw.counted_loop b ~start:(Instr.ci64 1)
           ~stop:(Builder.sub b h (Instr.ci64 1))
           ~step:1 ~accs:[]
           ~body:(fun b ~iv:y ~accs ->
             let rowbase = Builder.mul b y w in
             let xs = Builder.sub b w (Instr.ci64 2) in
             let xvec = Builder.and_ b xs (Instr.ci64 (lnot (vl - 1))) in
             let mk_ctx ~vector ~mask x =
               let o = Builder.add b rowbase x in
               let addr r c =
                 let off =
                   Builder.add b o
                     (Instr.ci64 (((r - 1) * Workload.width) + (c - 1)))
                 in
                 Builder.gep b src off
               in
               let tap r c =
                 if vector then
                   Builder.cast b Instr.ZExt
                     (Builder.vload b ?mask (addr r c) vl)
                     (Types.Vec (Types.I32, vl))
                 else Builder.cast b Instr.ZExt (Builder.load b (addr r c)) Types.i32
               in
               let k v =
                 if vector then Instr.cvec Types.I32 (Array.make vl (Int64.of_int v))
                 else Instr.ci32 v
               in
               let bin op a c = Builder.ibin b op a c in
               let out_addr = Builder.gep b dst o in
               let store_u8 v =
                 if vector then
                   Builder.vstore b ?mask
                     (Builder.cast b Instr.Trunc v (Types.Vec (Types.I8, vl)))
                     out_addr
                 else Builder.store b (Builder.cast b Instr.Trunc v Types.i8) out_addr
               in
               let store_i16 v =
                 if vector then
                   Builder.vstore b ?mask
                     (Builder.cast b Instr.Trunc v (Types.Vec (Types.I16, vl)))
                     out_addr
                 else
                   Builder.store b (Builder.cast b Instr.Trunc v Types.i16) out_addr
               in
               { tap; k; bin; store_u8; store_i16 }
             in
             ignore
               (Hw.counted_loop b ~start:(Instr.ci64 0) ~stop:xvec ~step:vl
                  ~accs:[]
                  ~body:(fun b ~iv:x0 ~accs ->
                    let x = Builder.add b x0 (Instr.ci64 1) in
                    formula b (mk_ctx ~vector:true ~mask:None x);
                    accs));
             (* row tail: one masked vector iteration, as real AVX-512
                code does with k-registers (not a scalar loop) *)
             let rem = Builder.sub b xs xvec in
             let remv = Builder.splat b rem vl in
             let tail_mask =
               Builder.icmp b Instr.Slt (Instr.iota Types.I64 vl) remv
             in
             let x = Builder.add b xvec (Instr.ci64 1) in
             formula b (mk_ctx ~vector:true ~mask:(Some tail_mask) x);
             accs)))

let stencil_kernel ~name ~family ~out ~decl ~store ~formula =
  let out_ty, out_elem, out_buf =
    match out with
    | `U8 -> ("uint8", Pir.Types.I8, u8outimg "dst")
    | `I16 -> ("int16", Pir.Types.I16, i16outimg "dst")
  in
  let serial_src, psim_src =
    stencil_srcs ~name ~out_ty ~gang:16 ~decl_serial:decl ~decl_psim:decl ~store
  in
  {
    kname = name;
    family;
    gang = 16;
    psim_src;
    serial_src;
    hand = Some (hand_stencil ~name ~out_elem ~formula);
    buffers = [ u8img "src" 201; out_buf ];
    scalars = [ vi width; vi height ];
    float_tolerance = 0.0;
  }

(* -- the 3x3 kernels -- *)

let gaussian_blur_3x3 =
  stencil_kernel ~name:"gaussian_blur_3x3" ~family:"GaussianBlur3x3" ~out:`U8
    ~decl:
      {|
      int32 acc = p00 + 2*p01 + p02 + 2*p10 + 4*p11 + 2*p12 + p20 + 2*p21 + p22;
      int32 r = (acc + 8) >> 4;|}
    ~store:"dst[o] = (uint8)r;"
    ~formula:(fun _b t ->
      let ( + ) a c = t.bin Pir.Instr.Add a c in
      let ( * ) c a = t.bin Pir.Instr.Mul (t.k c) a in
      let acc =
        t.tap 0 0 + (2 * t.tap 0 1) + t.tap 0 2 + (2 * t.tap 1 0)
        + (4 * t.tap 1 1) + (2 * t.tap 1 2) + t.tap 2 0 + (2 * t.tap 2 1)
        + t.tap 2 2
      in
      t.store_u8 (t.bin Pir.Instr.LShr (acc + t.k 8) (t.k 4)))

let mean_filter_3x3 =
  stencil_kernel ~name:"mean_filter_3x3" ~family:"MeanFilter3x3" ~out:`U8
    ~decl:
      {|
      int32 acc = p00 + p01 + p02 + p10 + p11 + p12 + p20 + p21 + p22;
      int32 r = (acc * 7282 + 32768) >> 16;|}
    ~store:"dst[o] = (uint8)r;"
    ~formula:(fun _b t ->
      let ( + ) a c = t.bin Pir.Instr.Add a c in
      let acc =
        t.tap 0 0 + t.tap 0 1 + t.tap 0 2 + t.tap 1 0 + t.tap 1 1 + t.tap 1 2
        + t.tap 2 0 + t.tap 2 1 + t.tap 2 2
      in
      let scaled = t.bin Pir.Instr.Mul acc (t.k 7282) in
      t.store_u8 (t.bin Pir.Instr.LShr (scaled + t.k 32768) (t.k 16)))

(* median of the 5-point rhomb via a min/max network *)
let median_filter_rhomb_3x3 =
  stencil_kernel ~name:"median_filter_rhomb_3x3" ~family:"MedianFilter" ~out:`U8
    ~decl:
      {|
      int32 a0 = p01; int32 a1 = p10; int32 a2 = p11; int32 a3 = p12; int32 a4 = p21;
      int32 t0 = min(a0, a1); int32 t1 = max(a0, a1); a0 = t0; a1 = t1;
      int32 t2 = min(a3, a4); int32 t3 = max(a3, a4); a3 = t2; a4 = t3;
      int32 u0 = max(a0, a3);
      int32 u1 = min(a1, a4);
      int32 m0 = min(u0, u1); int32 m1 = max(u0, u1);
      int32 mid = max(m0, min(a2, m1));
      int32 r = mid;|}
    ~store:"dst[o] = (uint8)r;"
    ~formula:(fun _b t ->
      let mn a c = t.bin Pir.Instr.SMin a c and mx a c = t.bin Pir.Instr.SMax a c in
      let a0 = t.tap 0 1 and a1 = t.tap 1 0 and a2 = t.tap 1 1 and a3 = t.tap 1 2
      and a4 = t.tap 2 1 in
      let a0' = mn a0 a1 and a1' = mx a0 a1 in
      let a3' = mn a3 a4 and a4' = mx a3 a4 in
      let u0 = mx a0' a3' and u1 = mn a1' a4' in
      let m0 = mn u0 u1 and m1 = mx u0 u1 in
      t.store_u8 (mx m0 (mn a2 m1)))

(* median of 9 with Paeth's 19-operation network *)
let median_filter_square_3x3 =
  let net_src =
    {|
      int32 q0 = p00; int32 q1 = p01; int32 q2 = p02;
      int32 q3 = p10; int32 q4 = p11; int32 q5 = p12;
      int32 q6 = p20; int32 q7 = p21; int32 q8 = p22;
      int32 s = 0;
      s = min(q1, q2); q2 = max(q1, q2); q1 = s;
      s = min(q4, q5); q5 = max(q4, q5); q4 = s;
      s = min(q7, q8); q8 = max(q7, q8); q7 = s;
      s = min(q0, q1); q1 = max(q0, q1); q0 = s;
      s = min(q3, q4); q4 = max(q3, q4); q3 = s;
      s = min(q6, q7); q7 = max(q6, q7); q6 = s;
      s = min(q1, q2); q2 = max(q1, q2); q1 = s;
      s = min(q4, q5); q5 = max(q4, q5); q4 = s;
      s = min(q7, q8); q8 = max(q7, q8); q7 = s;
      q3 = max(q0, q3);
      q5 = min(q5, q8);
      s = min(q4, q7); q7 = max(q4, q7); q4 = s;
      q6 = max(q3, q6);
      q4 = max(q1, q4);
      q2 = min(q2, q5);
      q4 = min(q4, q7);
      s = min(q4, q2); q2 = max(q4, q2); q4 = s;
      q4 = max(q6, q4);
      q4 = min(q4, q2);
      int32 r = q4;|}
  in
  stencil_kernel ~name:"median_filter_square_3x3" ~family:"MedianFilter"
    ~out:`U8 ~decl:net_src ~store:"dst[o] = (uint8)r;"
    ~formula:(fun _b t ->
      let mn a c = t.bin Pir.Instr.SMin a c and mx a c = t.bin Pir.Instr.SMax a c in
      let q = Array.init 3 (fun r -> Array.init 3 (fun c -> t.tap r c)) in
      let q = [| q.(0).(0); q.(0).(1); q.(0).(2); q.(1).(0); q.(1).(1); q.(1).(2); q.(2).(0); q.(2).(1); q.(2).(2) |] in
      let sort2 i j =
        let a = q.(i) and b = q.(j) in
        q.(i) <- mn a b;
        q.(j) <- mx a b
      in
      sort2 1 2; sort2 4 5; sort2 7 8;
      sort2 0 1; sort2 3 4; sort2 6 7;
      sort2 1 2; sort2 4 5; sort2 7 8;
      q.(3) <- mx q.(0) q.(3);
      q.(5) <- mn q.(5) q.(8);
      sort2 4 7;
      q.(6) <- mx q.(3) q.(6);
      q.(4) <- mx q.(1) q.(4);
      q.(2) <- mn q.(2) q.(5);
      q.(4) <- mn q.(4) q.(7);
      sort2 4 2;
      q.(4) <- mx q.(6) q.(4);
      q.(4) <- mn q.(4) q.(2);
      t.store_u8 q.(4))

let sobel ~name ~dx ~abs_out =
  let expr =
    if dx then "(p02 + 2*p12 + p22) - (p00 + 2*p10 + p20)"
    else "(p20 + 2*p21 + p22) - (p00 + 2*p01 + p02)"
  in
  let decl =
    if abs_out then
      Fmt.str {|
      int32 g = %s;
      int32 r = g < 0 ? 0 - g : g;|} expr
    else Fmt.str {|
      int32 r = %s;|} expr
  in
  stencil_kernel ~name
    ~family:(if dx then "SobelDx" else "SobelDy")
    ~out:`I16 ~decl ~store:"dst[o] = (int16)r;"
    ~formula:(fun _b t ->
      let ( + ) a c = t.bin Pir.Instr.Add a c in
      let ( - ) a c = t.bin Pir.Instr.Sub a c in
      let two a = t.bin Pir.Instr.Mul (t.k 2) a in
      let g =
        if dx then
          t.tap 0 2 + two (t.tap 1 2) + t.tap 2 2
          - (t.tap 0 0 + two (t.tap 1 0) + t.tap 2 0)
        else
          t.tap 2 0 + two (t.tap 2 1) + t.tap 2 2
          - (t.tap 0 0 + two (t.tap 0 1) + t.tap 0 2)
      in
      let r = if abs_out then t.bin Pir.Instr.SMax g (t.bin Pir.Instr.Sub (t.k 0) g) else g in
      t.store_i16 r)

let sobel_dx = sobel ~name:"sobel_dx" ~dx:true ~abs_out:false
let sobel_dy = sobel ~name:"sobel_dy" ~dx:false ~abs_out:false
let sobel_dx_abs = sobel ~name:"sobel_dx_abs" ~dx:true ~abs_out:true
let sobel_dy_abs = sobel ~name:"sobel_dy_abs" ~dx:false ~abs_out:true

let laplace ~name ~abs_out =
  let decl =
    let expr = "8*p11 - (p00 + p01 + p02 + p10 + p12 + p20 + p21 + p22)" in
    if abs_out then
      Fmt.str {|
      int32 g = %s;
      int32 r = g < 0 ? 0 - g : g;|} expr
    else Fmt.str {|
      int32 r = %s;|} expr
  in
  stencil_kernel ~name ~family:"Laplace" ~out:`I16 ~decl
    ~store:"dst[o] = (int16)r;"
    ~formula:(fun _b t ->
      let ( + ) a c = t.bin Pir.Instr.Add a c in
      let sum =
        t.tap 0 0 + t.tap 0 1 + t.tap 0 2 + t.tap 1 0 + t.tap 1 2 + t.tap 2 0
        + t.tap 2 1 + t.tap 2 2
      in
      let g = t.bin Pir.Instr.Sub (t.bin Pir.Instr.Mul (t.k 8) (t.tap 1 1)) sum in
      let r =
        if abs_out then t.bin Pir.Instr.SMax g (t.bin Pir.Instr.Sub (t.k 0) g)
        else g
      in
      t.store_i16 r)

let laplace_k = laplace ~name:"laplace" ~abs_out:false
let laplace_abs = laplace ~name:"laplace_abs" ~abs_out:true

let contour_metrics =
  stencil_kernel ~name:"contour_metrics" ~family:"ContourMetrics" ~out:`I16
    ~decl:
      {|
      int32 gx = (p02 + 2*p12 + p22) - (p00 + 2*p10 + p20);
      int32 gy = (p20 + 2*p21 + p22) - (p00 + 2*p01 + p02);
      int32 ax = gx < 0 ? 0 - gx : gx;
      int32 ay = gy < 0 ? 0 - gy : gy;
      int32 r = ax + ay;|}
    ~store:"dst[o] = (int16)r;"
    ~formula:(fun _b t ->
      let ( + ) a c = t.bin Pir.Instr.Add a c in
      let ( - ) a c = t.bin Pir.Instr.Sub a c in
      let two a = t.bin Pir.Instr.Mul (t.k 2) a in
      let gx =
        t.tap 0 2 + two (t.tap 1 2) + t.tap 2 2
        - (t.tap 0 0 + two (t.tap 1 0) + t.tap 2 0)
      in
      let gy =
        t.tap 2 0 + two (t.tap 2 1) + t.tap 2 2
        - (t.tap 0 0 + two (t.tap 0 1) + t.tap 0 2)
      in
      let abs g = t.bin Pir.Instr.SMax g (t.k 0 - g) in
      t.store_i16 (abs gx + abs gy))

let abs_gradient_saturated_sum =
  stencil_kernel ~name:"abs_gradient_saturated_sum" ~family:"AbsGradient"
    ~out:`U8
    ~decl:
      {|
      int32 dx = p12 - p10;
      int32 dy = p21 - p01;
      int32 ax = dx < 0 ? 0 - dx : dx;
      int32 ay = dy < 0 ? 0 - dy : dy;
      int32 s0 = ax + ay;
      int32 r = s0 > 255 ? 255 : s0;|}
    ~store:"dst[o] = (uint8)r;"
    ~formula:(fun _b t ->
      let ( - ) a c = t.bin Pir.Instr.Sub a c in
      let abs g = t.bin Pir.Instr.SMax g (t.k 0 - g) in
      let s = t.bin Pir.Instr.Add (abs (t.tap 1 2 - t.tap 1 0)) (abs (t.tap 2 1 - t.tap 0 1)) in
      t.store_u8 (t.bin Pir.Instr.SMin s (t.k 255)))

let texture_boosted_saturated_gradient =
  stencil_kernel ~name:"texture_boosted_saturated_gradient"
    ~family:"TextureBoosted" ~out:`U8
    ~decl:
      {|
      int32 g = 4 * (p12 - p10) + 128;
      int32 r = g < 0 ? 0 : (g > 255 ? 255 : g);|}
    ~store:"dst[o] = (uint8)r;"
    ~formula:(fun _b t ->
      let g =
        t.bin Pir.Instr.Add
          (t.bin Pir.Instr.Mul (t.k 4)
             (t.bin Pir.Instr.Sub (t.tap 1 2) (t.tap 1 0)))
          (t.k 128)
      in
      let cl = t.bin Pir.Instr.SMin (t.bin Pir.Instr.SMax g (t.k 0)) (t.k 255) in
      t.store_u8 cl)

let shift_bilinear =
  (* sample at (x + 0.25, y + 0.5): fx = 64, fy = 128 in 1/256 units *)
  stencil_kernel ~name:"shift_bilinear" ~family:"ShiftBilinear" ~out:`U8
    ~decl:
      {|
      int32 w00 = (256 - 64) * (256 - 128);
      int32 w01 = 64 * (256 - 128);
      int32 w10 = (256 - 64) * 128;
      int32 w11 = 64 * 128;
      int32 acc = p11 * w00 + p12 * w01 + p21 * w10 + p22 * w11;
      int32 r = (acc + 32768) >> 16;|}
    ~store:"dst[o] = (uint8)r;"
    ~formula:(fun _b t ->
      let ( + ) a c = t.bin Pir.Instr.Add a c in
      let mulk a c = t.bin Pir.Instr.Mul a (t.k c) in
      let acc =
        mulk (t.tap 1 1) (192 * 128)
        + mulk (t.tap 1 2) (64 * 128)
        + mulk (t.tap 2 1) (192 * 128)
        + mulk (t.tap 2 2) (64 * 128)
      in
      t.store_u8 (t.bin Pir.Instr.LShr (acc + t.k 32768) (t.k 16)))

let kernels =
  [
    gaussian_blur_3x3;
    mean_filter_3x3;
    median_filter_rhomb_3x3;
    median_filter_square_3x3;
    sobel_dx;
    sobel_dy;
    sobel_dx_abs;
    sobel_dy_abs;
    laplace_k;
    laplace_abs;
    contour_metrics;
    abs_gradient_saturated_sum;
    texture_boosted_saturated_gradient;
    shift_bilinear;
  ]
