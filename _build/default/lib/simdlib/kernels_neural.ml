(** Neural kernels (f32, gang 16): conversion, dot products, sigmoids,
    weight updates, and [pow] — the math-library-bound kernel where the
    hand-written implementation links a faster vector [pow] than SLEEF
    (the same effect behind the paper's Binomial Options gap, §6). *)

open Workload

let f32img name seed = in_f32 name seed
let f32outimg name = out_f32 name
let vf v = Pmachine.Value.F v

let f32_map_kernel ~name ~family ~inputs ~extra_scalars ~serial_body ~psim_body
    ~hand =
  let serial_params =
    String.concat ", "
      (List.map (fun a -> Fmt.str "float32* restrict %s" a) (inputs @ [ "dst" ]))
  in
  let psim_params =
    String.concat ", " (List.map (fun a -> Fmt.str "float32* %s" a) (inputs @ [ "dst" ]))
  in
  let scalar_params =
    String.concat ""
      (List.map (fun s -> Fmt.str ", float32 %s" s) extra_scalars)
  in
  let serial_src =
    Fmt.str
      {|
void %s(%s%s, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
%s
  }
}
|}
      name serial_params scalar_params serial_body
  in
  let psim_src =
    Fmt.str
      {|
void %s(%s%s, int64 n) {
  psim gang_size(16) num_spmd_threads(n) {
    int64 i = psim_thread_num();
%s
  }
}
|}
      name psim_params scalar_params psim_body
  in
  {
    kname = name;
    family;
    gang = 16;
    psim_src;
    serial_src;
    hand;
    buffers =
      List.mapi (fun idx a -> f32img a (500 + idx)) inputs @ [ f32outimg "dst" ];
    scalars = [];
    float_tolerance = 0.0;
  }

(* -- conversion: u8 -> f32 scaled -- *)

let neural_convert =
  let serial_src =
    {|
void neural_convert(uint8* restrict src, float32* restrict dst, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    dst[i] = (float32)(int32)src[i] * 0.003922;
  }
}
|}
  in
  let psim_src =
    {|
void neural_convert(uint8* src, float32* dst, int64 n) {
  psim gang_size(16) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    dst[i] = (float32)(int32)src[i] * 0.003922;
  }
}
|}
  in
  let hand m =
    let open Pir in
    Hw.define m "neural_convert" ~ptrs:[ Types.I8; Types.F32 ] ~scalars:[]
      ~emit:(fun b ~ptrs ~scalars:_ ~n ->
        let src, dst = match ptrs with [ s; d ] -> (s, d) | _ -> assert false in
        let vl = 16 in
        let kf =
          Pmachine.Value.round_float Types.F32 0.003922
        in
        Hw.strip_mined_loop b ~n ~vl
          ~vec_body:(fun b i ->
            let v = Builder.vload b (Builder.gep b src i) vl in
            let w = Builder.cast b Instr.ZExt v (Types.Vec (Types.I32, vl)) in
            let f = Builder.cast b Instr.UIToFP w (Types.Vec (Types.F32, vl)) in
            let s =
              Builder.fbin b Instr.FMul f
                (Builder.splat b (Instr.Const (Instr.Cfloat (Types.F32, kf))) vl)
            in
            Builder.vstore b s (Builder.gep b dst i))
          ~scalar_body:(fun b j ->
            let v = Builder.load b (Builder.gep b src j) in
            let w = Builder.cast b Instr.ZExt v Types.i32 in
            let f = Builder.cast b Instr.UIToFP w Types.f32 in
            let s =
              Builder.fbin b Instr.FMul f (Instr.Const (Instr.Cfloat (Types.F32, kf)))
            in
            Builder.store b s (Builder.gep b dst j)))
  in
  {
    kname = "neural_convert";
    family = "Neural";
    gang = 16;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers = [ in_u8 "src" 510; f32outimg "dst" ];
    scalars = [ vi pixels ];
    float_tolerance = 1e-6;
  }

(* -- float map kernels with a shared hand scaffold -- *)

let hand_f32_map name ~inputs ~extra_scalars ~vop ~sop m =
  let open Pir in
  Hw.define m name
    ~ptrs:(List.init inputs (fun _ -> Types.F32) @ [ Types.F32 ])
    ~scalars:(List.map (fun _ -> Types.f32) extra_scalars)
    ~emit:(fun b ~ptrs ~scalars ~n ->
      let ins, dst =
        match List.rev ptrs with
        | d :: ri -> (List.rev ri, d)
        | [] -> assert false
      in
      let vl = 16 in
      Hw.strip_mined_loop b ~n ~vl
        ~vec_body:(fun b i ->
          let vs = List.map (fun p -> Builder.vload b (Builder.gep b p i) vl) ins in
          let dst_addr = Builder.gep b dst i in
          let dv = Builder.vload b dst_addr vl in
          let ks = List.map (fun s -> Builder.splat b s vl) scalars in
          Builder.vstore b (vop b ~vl vs dv ks) dst_addr)
        ~scalar_body:(fun b j ->
          let vs = List.map (fun p -> Builder.load b (Builder.gep b p j)) ins in
          let dst_addr = Builder.gep b dst j in
          let dv = Builder.load b dst_addr in
          Builder.store b (sop b vs dv scalars) dst_addr))

let neural_add_vector_multiplied_by_value =
  let k =
    f32_map_kernel ~name:"neural_add_vector_multiplied_by_value"
      ~family:"Neural" ~inputs:[ "src" ] ~extra_scalars:[ "value" ]
      ~serial_body:"    dst[i] = dst[i] + src[i] * value;"
      ~psim_body:"    dst[i] = dst[i] + src[i] * value;"
      ~hand:
        (Some
           (hand_f32_map "neural_add_vector_multiplied_by_value" ~inputs:1
              ~extra_scalars:[ "value" ]
              ~vop:(fun b ~vl:_ vs dv ks ->
                Pir.Builder.fadd b dv
                  (Pir.Builder.fmul b (List.hd vs) (List.hd ks)))
              ~sop:(fun b vs dv ks ->
                Pir.Builder.fadd b dv
                  (Pir.Builder.fmul b (List.hd vs) (List.hd ks)))))
  in
  {
    k with
    buffers = [ f32img "src" 511; { (f32outimg "dst") with init = Workload.f32 512 } ];
    scalars = [ vf 0.75; vi pixels ];
  }

let neural_update_weights =
  let k =
    f32_map_kernel ~name:"neural_update_weights" ~family:"Neural"
      ~inputs:[ "d1"; "d2" ] ~extra_scalars:[ "a"; "b" ]
      ~serial_body:"    dst[i] = dst[i] * a + d1[i] * b + d2[i];"
      ~psim_body:"    dst[i] = dst[i] * a + d1[i] * b + d2[i];"
      ~hand:
        (Some
           (hand_f32_map "neural_update_weights" ~inputs:2
              ~extra_scalars:[ "a"; "b" ]
              ~vop:(fun bld ~vl:_ vs dv ks ->
                match (vs, ks) with
                | [ d1; d2 ], [ a; b ] ->
                    Pir.Builder.fadd bld
                      (Pir.Builder.fadd bld
                         (Pir.Builder.fmul bld dv a)
                         (Pir.Builder.fmul bld d1 b))
                      d2
                | _ -> assert false)
              ~sop:(fun bld vs dv ks ->
                match (vs, ks) with
                | [ d1; d2 ], [ a; b ] ->
                    Pir.Builder.fadd bld
                      (Pir.Builder.fadd bld
                         (Pir.Builder.fmul bld dv a)
                         (Pir.Builder.fmul bld d1 b))
                      d2
                | _ -> assert false)))
  in
  {
    k with
    buffers =
      [ f32img "d1" 513; f32img "d2" 514; { (f32outimg "dst") with init = Workload.f32 515 } ];
    scalars = [ vf 0.9; vf 0.1; vi pixels ];
  }

let neural_sigmoid =
  let body = "    dst[i] = 1.0 / (1.0 + expf(0.0 - src[i] * slope));" in
  let k =
    f32_map_kernel ~name:"neural_sigmoid" ~family:"Neural" ~inputs:[ "src" ]
      ~extra_scalars:[ "slope" ] ~serial_body:body ~psim_body:body
      ~hand:
        (Some
           (hand_f32_map "neural_sigmoid" ~inputs:1 ~extra_scalars:[ "slope" ]
              ~vop:(fun b ~vl vs _dv ks ->
                let open Pir in
                let x = Builder.fmul b (List.hd vs) (List.hd ks) in
                let nx =
                  Builder.fsub b
                    (Builder.splat b (Instr.cf32 0.0) vl)
                    x
                in
                let e =
                  Builder.call b (Types.Vec (Types.F32, vl)) "ispc.exp.f32" [ nx ]
                in
                let one = Builder.splat b (Instr.cf32 1.0) vl in
                Builder.fdiv b one (Builder.fadd b one e))
              ~sop:(fun b vs _dv ks ->
                let open Pir in
                let x = Builder.fmul b (List.hd vs) (List.hd ks) in
                let nx = Builder.fsub b (Instr.cf32 0.0) x in
                let e = Builder.call b Types.f32 "math.exp.f32" [ nx ] in
                Builder.fdiv b (Instr.cf32 1.0)
                  (Builder.fadd b (Instr.cf32 1.0) e))))
  in
  { k with scalars = [ vf 1.5; vi pixels ]; float_tolerance = 1e-5 }

let neural_rough_sigmoid =
  (* (1 + x/8)^8 exponential approximation, sign-folded: pure arithmetic *)
  let body =
    {|
    float32 x = src[i] * slope;
    float32 ax = fabsf(x);
    float32 e1 = 1.0 + ax * 0.125;
    float32 e2 = e1 * e1;
    float32 e4 = e2 * e2;
    float32 e8 = e4 * e4;
    float32 s = 1.0 / (1.0 + e8);
    dst[i] = x > 0.0 ? 1.0 - s : s;|}
  in
  let k =
    f32_map_kernel ~name:"neural_rough_sigmoid" ~family:"Neural"
      ~inputs:[ "src" ] ~extra_scalars:[ "slope" ] ~serial_body:body
      ~psim_body:body
      ~hand:
        (Some
           (hand_f32_map "neural_rough_sigmoid" ~inputs:1
              ~extra_scalars:[ "slope" ]
              ~vop:(fun b ~vl vs _dv ks ->
                let open Pir in
                let kf v = Builder.splat b (Instr.cf32 v) vl in
                let x = Builder.fmul b (List.hd vs) (List.hd ks) in
                let ax = Builder.fun_ b Instr.FAbs x in
                let e1 = Builder.fadd b (kf 1.0) (Builder.fmul b ax (kf 0.125)) in
                let e2 = Builder.fmul b e1 e1 in
                let e4 = Builder.fmul b e2 e2 in
                let e8 = Builder.fmul b e4 e4 in
                let s = Builder.fdiv b (kf 1.0) (Builder.fadd b (kf 1.0) e8) in
                let pos = Builder.fcmp b Instr.Ogt x (kf 0.0) in
                Builder.select b pos (Builder.fsub b (kf 1.0) s) s)
              ~sop:(fun b vs _dv ks ->
                let open Pir in
                let kf v = Instr.cf32 v in
                let x = Builder.fmul b (List.hd vs) (List.hd ks) in
                let ax = Builder.fun_ b Instr.FAbs x in
                let e1 = Builder.fadd b (kf 1.0) (Builder.fmul b ax (kf 0.125)) in
                let e2 = Builder.fmul b e1 e1 in
                let e4 = Builder.fmul b e2 e2 in
                let e8 = Builder.fmul b e4 e4 in
                let s = Builder.fdiv b (kf 1.0) (Builder.fadd b (kf 1.0) e8) in
                let pos = Builder.fcmp b Instr.Ogt x (kf 0.0) in
                Builder.select b pos (Builder.fsub b (kf 1.0) s) s)))
  in
  { k with scalars = [ vf 1.5; vi pixels ] }

let neural_derivative_sigmoid =
  let body = "    float32 s = src[i];\n    dst[i] = slope * s * (1.0 - s);" in
  let k =
    f32_map_kernel ~name:"neural_derivative_sigmoid" ~family:"Neural"
      ~inputs:[ "src" ] ~extra_scalars:[ "slope" ] ~serial_body:body
      ~psim_body:body
      ~hand:
        (Some
           (hand_f32_map "neural_derivative_sigmoid" ~inputs:1
              ~extra_scalars:[ "slope" ]
              ~vop:(fun b ~vl vs _dv ks ->
                let open Pir in
                let s = List.hd vs in
                let one = Builder.splat b (Instr.cf32 1.0) vl in
                Builder.fmul b
                  (Builder.fmul b (List.hd ks) s)
                  (Builder.fsub b one s))
              ~sop:(fun b vs _dv ks ->
                let open Pir in
                let s = List.hd vs in
                Builder.fmul b
                  (Builder.fmul b (List.hd ks) s)
                  (Builder.fsub b (Instr.cf32 1.0) s))))
  in
  { k with scalars = [ vf 1.5; vi pixels ] }

let neural_pow =
  (* math-library bound: Parsimony links SLEEF's pow, the hand-written
     version its own tuned vector pow (2.6x faster, per the paper) *)
  let body = "    dst[i] = powf(src[i] + 1.5, e);" in
  let k =
    f32_map_kernel ~name:"neural_pow" ~family:"Neural" ~inputs:[ "src" ]
      ~extra_scalars:[ "e" ] ~serial_body:body ~psim_body:body
      ~hand:
        (Some
           (hand_f32_map "neural_pow" ~inputs:1 ~extra_scalars:[ "e" ]
              ~vop:(fun b ~vl vs _dv ks ->
                let open Pir in
                let x =
                  Builder.fadd b (List.hd vs) (Builder.splat b (Instr.cf32 1.5) vl)
                in
                Builder.call b (Types.Vec (Types.F32, vl)) "ispc.pow.f32"
                  [ x; List.hd ks ])
              ~sop:(fun b vs _dv ks ->
                let open Pir in
                let x = Builder.fadd b (List.hd vs) (Instr.cf32 1.5) in
                Builder.call b Types.f32 "math.pow.f32" [ x; List.hd ks ])))
  in
  { k with scalars = [ vf 1.75; vi pixels ]; float_tolerance = 1e-5 }

(* -- float reductions -- *)

let f32_reduce_kernel ~name ~serial_expr ~psim_expr ~vcontrib ~scontrib =
  let serial_src =
    Fmt.str
      {|
void %s(float32* restrict a, float32* restrict b, float32* restrict partial, float32* restrict out, int64 n) {
  float32 acc = 0.0;
  for (int64 i = 0; i < n; i = i + 1) {
    acc = acc + (%s);
  }
  out[0] = acc;
}
|}
      name serial_expr
  in
  let psim_src =
    Fmt.str
      {|
void %s(float32* a, float32* b, float32* partial, float32* out, int64 n) {
  psim gang_size(16) num_spmd_threads(16) {
    uint64 l = psim_lane_num();
    float32 acc = 0.0;
    for (int64 k = 0; k < n / 16; k = k + 1) {
      int64 i = k * 16 + (int64)l;
      acc = acc + (%s);
    }
    uint64 off = 8;
    while (off > 0) {
      acc = acc + psim_shuffle(acc, l ^ off);
      off = off >> 1;
    }
    out[0] = acc;
  }
}
|}
      name psim_expr
  in
  let hand m =
    let open Pir in
    Hw.define m name ~ptrs:[ Types.F32; Types.F32; Types.F32; Types.F32 ]
      ~scalars:[]
      ~emit:(fun b ~ptrs ~scalars:_ ~n ->
        let a = List.nth ptrs 0
        and b' = List.nth ptrs 1
        and out = List.nth ptrs 3 in
        let vl = 16 in
        let zero = Builder.splat b (Instr.cf32 0.0) vl in
        Hw.strip_mined_reduce b ~n ~vl
          ~acc_specs:[ (Types.Vec (Types.F32, vl), zero) ]
          ~reduce_kinds:[ Instr.RFAdd ]
          ~vec_body:(fun bld ~iv ~accs ->
            let va = Builder.vload bld (Builder.gep bld a iv) vl in
            let vb = Builder.vload bld (Builder.gep bld b' iv) vl in
            [ Builder.fadd bld (List.hd accs) (vcontrib bld va vb) ])
          ~scalar_body:(fun bld ~iv ~accs ->
            let la = Builder.load bld (Builder.gep bld a iv) in
            let lb = Builder.load bld (Builder.gep bld b' iv) in
            [ Builder.fadd bld (List.hd accs) (scontrib bld la lb) ])
          ~finish:(fun bld finals ->
            Builder.store bld (List.hd finals) (Builder.gep bld out (Instr.ci64 0))))
  in
  {
    kname = name;
    family = "Neural";
    gang = 16;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers =
      [
        f32img "a" 520;
        f32img "b" 521;
        { bname = "partial"; elem = Pir.Types.F32; len = pixels / 16; init = zero32f; output = false };
        { bname = "out"; elem = Pir.Types.F32; len = 1; init = zero32f; output = true };
      ];
    scalars = [ vi pixels ];
    (* reduction orders differ across implementations *)
    float_tolerance = 1e-3;
  }

let neural_product_sum =
  f32_reduce_kernel ~name:"neural_product_sum" ~serial_expr:"a[i] * b[i]"
    ~psim_expr:"a[i] * b[i]"
    ~vcontrib:(fun b va vb -> Pir.Builder.fmul b va vb)
    ~scontrib:(fun b la lb -> Pir.Builder.fmul b la lb)

let squared_difference_sum_32f =
  f32_reduce_kernel ~name:"squared_difference_sum_32f"
    ~serial_expr:"(a[i] - b[i]) * (a[i] - b[i])"
    ~psim_expr:"(a[i] - b[i]) * (a[i] - b[i])"
    ~vcontrib:(fun b va vb ->
      let d = Pir.Builder.fsub b va vb in
      Pir.Builder.fmul b d d)
    ~scontrib:(fun b la lb ->
      let d = Pir.Builder.fsub b la lb in
      Pir.Builder.fmul b d d)

let kernels =
  [
    neural_convert;
    neural_add_vector_multiplied_by_value;
    neural_update_weights;
    neural_sigmoid;
    neural_rough_sigmoid;
    neural_derivative_sigmoid;
    neural_pow;
    neural_product_sum;
    squared_difference_sum_32f;
  ]
