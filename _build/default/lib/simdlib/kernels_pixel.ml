(** Per-pixel kernels ported from the Simd Library: binary u8 operations,
    alpha blending, binarization, feature difference, and the background
    maintenance family.

    For each kernel we provide the serial C-like source (scalar and
    auto-vectorizer baselines), the Parsimony port (gang size 64 for u8
    pixels — wider than any per-lane 32-bit intermediate would allow a
    loop vectorizer to go), and a hand-written AVX-512-style
    implementation instantiating [Hw.map]. *)

open Workload

(* -- source templates -- *)

(* [body] assigns "dst" from u8 inputs bound to a, b, ... *)
(* the serial source is standard C: saturating/rounding u8 operations
   must be spelled with widened arithmetic and clamps (C has no
   saturating operators), which also caps the auto-vectorizer's VF at
   the 32-bit intermediate width.  The Parsimony port uses the psim API's
   saturating operations directly (paper: "APIs for operations not
   typically exposed in standard language APIs"). *)
let binary_u8_srcs ?serial_body ~name ~body () =
  let serial =
    Fmt.str
      {|
void %s(uint8* restrict a, uint8* restrict b, uint8* restrict dst, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    int32 va = (int32)a[i];
    int32 vb = (int32)b[i];
    %s
    dst[i] = (uint8)r;
  }
}
|}
      name (Option.value ~default:body serial_body)
  in
  let psim =
    Fmt.str
      {|
void %s(uint8* a, uint8* b, uint8* dst, int64 n) {
  psim gang_size(64) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    uint8 va = a[i];
    uint8 vb = b[i];
    %s
    dst[i] = r;
  }
}
|}
      name body
  in
  (serial, psim)

let binary_u8 ~name ~family ?serial_body ~body ~vop () =
  let serial_src, psim_src = binary_u8_srcs ?serial_body ~name ~body () in
  {
    kname = name;
    family;
    gang = 64;
    psim_src;
    serial_src;
    hand =
      Some
        (fun m ->
          Hw.map m name ~elem:Pir.Types.I8 ~inputs:2
            ~vop:(fun b vs -> vop b (List.nth vs 0) (List.nth vs 1))
            ~sop:(fun b vs -> vop b (List.nth vs 0) (List.nth vs 1)));
    buffers = [ in_u8 "a" 11; in_u8 "b" 22; out_u8 "dst" ];
    scalars = [ vi pixels ];
    float_tolerance = 0.0;
  }

let ib k a b' bld = Pir.Builder.ibin bld k a b'
let op2 k = fun bld a b' -> ib k a b' bld

(* 1-8: OperationBinary8u family + AbsDifference + Average *)
let operation_binary_8u =
  [
    binary_u8 ~name:"operation_binary8u_and" ~family:"OperationBinary8u"
      ~body:"uint8 r = va & vb;" ~serial_body:"int32 r = va & vb;"
      ~vop:(op2 Pir.Instr.And) ();
    binary_u8 ~name:"operation_binary8u_or" ~family:"OperationBinary8u"
      ~body:"uint8 r = va | vb;" ~serial_body:"int32 r = va | vb;"
      ~vop:(op2 Pir.Instr.Or) ();
    binary_u8 ~name:"operation_binary8u_xor" ~family:"OperationBinary8u"
      ~body:"uint8 r = va ^ vb;" ~serial_body:"int32 r = va ^ vb;"
      ~vop:(op2 Pir.Instr.Xor) ();
    binary_u8 ~name:"operation_binary8u_max" ~family:"OperationBinary8u"
      ~body:"uint8 r = max(va, vb);"
      ~serial_body:"int32 r = va > vb ? va : vb;"
      ~vop:(op2 Pir.Instr.UMax) ();
    binary_u8 ~name:"operation_binary8u_min" ~family:"OperationBinary8u"
      ~body:"uint8 r = min(va, vb);"
      ~serial_body:"int32 r = va < vb ? va : vb;"
      ~vop:(op2 Pir.Instr.UMin) ();
    binary_u8 ~name:"operation_binary8u_saturated_add"
      ~family:"OperationBinary8u" ~body:"uint8 r = add_sat(va, vb);"
      ~serial_body:"int32 s = va + vb; int32 r = s > 255 ? 255 : s;"
      ~vop:(op2 Pir.Instr.UAddSat) ();
    binary_u8 ~name:"operation_binary8u_saturated_sub"
      ~family:"OperationBinary8u" ~body:"uint8 r = sub_sat(va, vb);"
      ~serial_body:"int32 s = va - vb; int32 r = s < 0 ? 0 : s;"
      ~vop:(op2 Pir.Instr.USubSat) ();
    binary_u8 ~name:"operation_binary8u_average" ~family:"OperationBinary8u"
      ~body:"uint8 r = avg_u(va, vb);"
      ~serial_body:"int32 r = (va + vb + 1) >> 1;"
      ~vop:(op2 Pir.Instr.AvgrU) ();
    binary_u8 ~name:"abs_difference" ~family:"AbsDifference"
      ~body:"uint8 r = absdiff_u(va, vb);"
      ~serial_body:"int32 d = va - vb; int32 r = d < 0 ? 0 - d : d;"
      ~vop:(op2 Pir.Instr.AbsDiffU) ();
  ]

(* -- alpha blending: dst = (src*alpha + dst*(255-alpha) + 128) / 255,
   with the standard DivideBy255 trick (x + (x >> 8) + 1) >> 8 -- *)

let div255_src = {|
inline uint16 div255(uint16 x) {
  return (x + ((x + 128) >> 8) + 128) >> 8;
}
|}

let alpha_blending =
  let body =
    {|
    uint16 s16 = (uint16)s;
    uint16 d16 = (uint16)d;
    uint16 a16 = (uint16)av;
    uint16 blended = div255(s16 * a16 + d16 * (255 - a16));
    dst[i] = (uint8)blended;|}
  in
  let serial_src =
    div255_src
    ^ Fmt.str
        {|
void alpha_blending(uint8* restrict src, uint8* restrict alpha, uint8* restrict dst, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    uint8 s = src[i];
    uint8 av = alpha[i];
    uint8 d = dst[i];
%s
  }
}
|}
        body
  in
  let psim_src =
    div255_src
    ^ Fmt.str
        {|
void alpha_blending(uint8* src, uint8* alpha, uint8* dst, int64 n) {
  psim gang_size(32) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    uint8 s = src[i];
    uint8 av = alpha[i];
    uint8 d = dst[i];
%s
  }
}
|}
        body
  in
  let hand m =
    (* 16-bit math at 32 lanes, exactly like the AVX-512 original *)
    let open Pir in
    let u16 x = x in
    ignore u16;
    Hw.define m "alpha_blending" ~ptrs:[ Types.I8; Types.I8; Types.I8 ]
      ~scalars:[]
      ~emit:(fun b ~ptrs ~scalars:_ ~n ->
        let src, alpha, dst =
          match ptrs with [ s; a; d ] -> (s, a, d) | _ -> assert false
        in
        let vl = 32 in
        let widen v =
          Builder.cast b Instr.ZExt v (Types.Vec (Types.I16, vl))
        in
        let blend b' vs =
          ignore b';
          match vs with
          | [ s; a; d ] ->
              let s16 = widen s and a16 = widen a and d16 = widen d in
              let na =
                Builder.ibin b Instr.Sub
                  (Instr.cvec Types.I16 (Array.make vl 255L))
                  a16
              in
              let t =
                Builder.ibin b Instr.Add
                  (Builder.ibin b Instr.Mul s16 a16)
                  (Builder.ibin b Instr.Mul d16 na)
              in
              let c128 = Instr.cvec Types.I16 (Array.make vl 128L) in
              let t1 = Builder.ibin b Instr.Add t c128 in
              let t2 =
                Builder.ibin b Instr.LShr t1 (Instr.cvec Types.I16 (Array.make vl 8L))
              in
              let t3 = Builder.ibin b Instr.Add (Builder.ibin b Instr.Add t t2) c128 in
              let r16 =
                Builder.ibin b Instr.LShr t3 (Instr.cvec Types.I16 (Array.make vl 8L))
              in
              Builder.cast b Instr.Trunc r16 (Types.Vec (Types.I8, vl))
          | _ -> assert false
        in
        let blend_scalar b' vs =
          ignore b';
          match vs with
          | [ s; a; d ] ->
              let w v = Builder.cast b Instr.ZExt v Types.i16 in
              let s16 = w s and a16 = w a and d16 = w d in
              let na = Builder.ibin b Instr.Sub (Instr.cint Types.I16 255L) a16 in
              let t =
                Builder.ibin b Instr.Add
                  (Builder.ibin b Instr.Mul s16 a16)
                  (Builder.ibin b Instr.Mul d16 na)
              in
              let c128 = Instr.cint Types.I16 128L in
              let t1 = Builder.ibin b Instr.Add t c128 in
              let t2 = Builder.ibin b Instr.LShr t1 (Instr.cint Types.I16 8L) in
              let t3 = Builder.ibin b Instr.Add (Builder.ibin b Instr.Add t t2) c128 in
              let r16 = Builder.ibin b Instr.LShr t3 (Instr.cint Types.I16 8L) in
              Builder.cast b Instr.Trunc r16 Types.i8
          | _ -> assert false
        in
        Hw.strip_mined_loop b ~n ~vl
          ~vec_body:(fun b i ->
            let addr_d = Builder.gep b dst i in
            let vs =
              [
                Builder.vload b (Builder.gep b src i) vl;
                Builder.vload b (Builder.gep b alpha i) vl;
                Builder.vload b addr_d vl;
              ]
            in
            Builder.vstore b (blend b vs) addr_d)
          ~scalar_body:(fun b j ->
            let addr_d = Builder.gep b dst j in
            let vs =
              [
                Builder.load b (Builder.gep b src j);
                Builder.load b (Builder.gep b alpha j);
                Builder.load b addr_d;
              ]
            in
            Builder.store b (blend_scalar b vs) addr_d))
  in
  {
    kname = "alpha_blending";
    family = "AlphaBlending";
    gang = 32;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers = [ in_u8 "src" 31; in_u8 "alpha" 32; inout_u8 "dst" 33 ];
    scalars = [ vi pixels ];
    float_tolerance = 0.0;
  }

(* the formula is div255(x*a) with a from the alpha plane *)
let alpha_premultiply =
  let serial_src =
    div255_src
    ^ {|
void alpha_premultiply(uint8* restrict src, uint8* restrict alpha, uint8* restrict dst, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    uint16 p = (uint16)src[i] * (uint16)alpha[i];
    dst[i] = (uint8)div255(p);
  }
}
|}
  in
  let psim_src =
    div255_src
    ^ {|
void alpha_premultiply(uint8* src, uint8* alpha, uint8* dst, int64 n) {
  psim gang_size(32) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    uint16 p = (uint16)src[i] * (uint16)alpha[i];
    dst[i] = (uint8)div255(p);
  }
}
|}
  in
  let hand m =
    let open Pir in
    Hw.define m "alpha_premultiply" ~ptrs:[ Types.I8; Types.I8; Types.I8 ]
      ~scalars:[]
      ~emit:(fun b ~ptrs ~scalars:_ ~n ->
        let src, alpha, dst =
          match ptrs with [ s; a; d ] -> (s, a, d) | _ -> assert false
        in
        let vl = 32 in
        let div255 t =
          let c128 = Instr.cvec Types.I16 (Array.make vl 128L) in
          let sh8 = Instr.cvec Types.I16 (Array.make vl 8L) in
          let t1 = Builder.ibin b Instr.Add t c128 in
          let t2 = Builder.ibin b Instr.LShr t1 sh8 in
          let t3 = Builder.ibin b Instr.Add (Builder.ibin b Instr.Add t t2) c128 in
          Builder.ibin b Instr.LShr t3 sh8
        in
        let div255s t =
          let c128 = Instr.cint Types.I16 128L in
          let sh8 = Instr.cint Types.I16 8L in
          let t1 = Builder.ibin b Instr.Add t c128 in
          let t2 = Builder.ibin b Instr.LShr t1 sh8 in
          let t3 = Builder.ibin b Instr.Add (Builder.ibin b Instr.Add t t2) c128 in
          Builder.ibin b Instr.LShr t3 sh8
        in
        Hw.strip_mined_loop b ~n ~vl
          ~vec_body:(fun b i ->
            let s = Builder.vload b (Builder.gep b src i) vl in
            let a = Builder.vload b (Builder.gep b alpha i) vl in
            let w v = Builder.cast b Instr.ZExt v (Types.Vec (Types.I16, vl)) in
            let p = Builder.ibin b Instr.Mul (w s) (w a) in
            let r = Builder.cast b Instr.Trunc (div255 p) (Types.Vec (Types.I8, vl)) in
            Builder.vstore b r (Builder.gep b dst i))
          ~scalar_body:(fun b j ->
            let s = Builder.load b (Builder.gep b src j) in
            let a = Builder.load b (Builder.gep b alpha j) in
            let w v = Builder.cast b Instr.ZExt v Types.i16 in
            let p = Builder.ibin b Instr.Mul (w s) (w a) in
            let r = Builder.cast b Instr.Trunc (div255s p) Types.i8 in
            Builder.store b r (Builder.gep b dst j)))
  in
  {
    kname = "alpha_premultiply";
    family = "AlphaBlending";
    gang = 32;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers = [ in_u8 "src" 41; in_u8 "alpha" 42; out_u8 "dst" ];
    scalars = [ vi pixels ];
    float_tolerance = 0.0;
  }

(* binarization: dst = a > t ? positive : negative *)
let binarization =
  let body = "dst[i] = a[i] > t ? (uint8)255 : (uint8)0;" in
  let serial_src =
    Fmt.str
      {|
void binarization(uint8* restrict a, uint8* restrict dst, uint8 t, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    %s
  }
}
|}
      body
  in
  let psim_src =
    Fmt.str
      {|
void binarization(uint8* a, uint8* dst, uint8 t, int64 n) {
  psim gang_size(64) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    %s
  }
}
|}
      body
  in
  let hand m =
    let open Pir in
    Hw.define m "binarization" ~ptrs:[ Types.I8; Types.I8 ]
      ~scalars:[ Types.i8 ]
      ~emit:(fun b ~ptrs ~scalars ~n ->
        let a, dst =
          match ptrs with [ a; d ] -> (a, d) | _ -> assert false
        in
        let t = List.hd scalars in
        let vl = 64 in
        Hw.strip_mined_loop b ~n ~vl
          ~vec_body:(fun b i ->
            let v = Builder.vload b (Builder.gep b a i) vl in
            let tv = Builder.splat b t vl in
            let c = Builder.icmp b Instr.Ugt v tv in
            let r =
              Builder.select b c
                (Instr.cvec Types.I8 (Array.make vl 255L))
                (Instr.cvec Types.I8 (Array.make vl 0L))
            in
            Builder.vstore b r (Builder.gep b dst i))
          ~scalar_body:(fun b j ->
            let v = Builder.load b (Builder.gep b a j) in
            let c = Builder.icmp b Instr.Ugt v t in
            let r =
              Builder.select b c (Instr.cint Types.I8 255L) (Instr.cint Types.I8 0L)
            in
            Builder.store b r (Builder.gep b dst j)))
  in
  {
    kname = "binarization";
    family = "Binarization";
    gang = 64;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers = [ in_u8 "a" 51; out_u8 "dst" ];
    scalars = [ vi 127; vi pixels ];
    float_tolerance = 0.0;
  }

(* add feature difference:
   dst = sat_add(dst, shifted excess of |value-lo|,|hi-value|) *)
let add_feature_difference =
  let body =
    {|
    uint8 v = value[i];
    uint8 l = lo[i];
    uint8 h = hi[i];
    uint8 excess = add_sat(sub_sat(v, h), sub_sat(l, v));
    uint16 weighted = ((uint16)excess * (uint16)excess) >> 8;
    dst[i] = add_sat(dst[i], (uint8)weighted);|}
  in
  let serial_src =
    Fmt.str
      {|
void add_feature_difference(uint8* restrict value, uint8* restrict lo, uint8* restrict hi, uint8* restrict dst, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
%s
  }
}
|}
      body
  in
  let psim_src =
    Fmt.str
      {|
void add_feature_difference(uint8* value, uint8* lo, uint8* hi, uint8* dst, int64 n) {
  psim gang_size(32) num_spmd_threads(n) {
    int64 i = psim_thread_num();
%s
  }
}
|}
      body
  in
  let hand m =
    let open Pir in
    Hw.map_inplace m "add_feature_difference" ~elem:Types.I8 ~inputs:3
      ~vop:(fun b vs ->
        match vs with
        | [ v; l; h; d ] ->
            let vl = 32 in
            let e1 = Builder.ibin b Instr.USubSat v h in
            let e2 = Builder.ibin b Instr.USubSat l v in
            let excess = Builder.ibin b Instr.UAddSat e1 e2 in
            let w v = Builder.cast b Instr.ZExt v (Types.Vec (Types.I16, Types.lanes (Builder.ty_of b v))) in
            let sq = Builder.ibin b Instr.Mul (w excess) (w excess) in
            let sh =
              Builder.ibin b Instr.LShr sq
                (Instr.cvec Types.I16 (Array.make (Types.lanes (Builder.ty_of b sq)) 8L))
            in
            let weighted =
              Builder.cast b Instr.Trunc sh (Types.Vec (Types.I8, Types.lanes (Builder.ty_of b sh)))
            in
            ignore vl;
            Builder.ibin b Instr.UAddSat d weighted
        | _ -> assert false)
      ~sop:(fun b vs ->
        match vs with
        | [ v; l; h; d ] ->
            let e1 = Builder.ibin b Instr.USubSat v h in
            let e2 = Builder.ibin b Instr.USubSat l v in
            let excess = Builder.ibin b Instr.UAddSat e1 e2 in
            let w v = Builder.cast b Instr.ZExt v Types.i16 in
            let sq = Builder.ibin b Instr.Mul (w excess) (w excess) in
            let sh = Builder.ibin b Instr.LShr sq (Instr.cint Types.I16 8L) in
            let weighted = Builder.cast b Instr.Trunc sh Types.i8 in
            Builder.ibin b Instr.UAddSat d weighted
        | _ -> assert false)
  in
  {
    kname = "add_feature_difference";
    family = "AddFeatureDifference";
    gang = 32;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers =
      [ in_u8 "value" 61; in_u8 "lo" 62; in_u8 "hi" 63; inout_u8 "dst" 64 ];
    scalars = [ vi pixels ];
    float_tolerance = 0.0;
  }

(* -- background maintenance family (per-pixel u8 state updates) -- *)

let bg_kernel ~name ~family ~arrays ?serial_body ~body ~hand_inputs ~vop ~sop ~inplace () =
  let params_serial =
    String.concat ", "
      (List.map (fun a -> Fmt.str "uint8* restrict %s" a) arrays)
  in
  let params_psim =
    String.concat ", " (List.map (fun a -> Fmt.str "uint8* %s" a) arrays)
  in
  let serial_src =
    Fmt.str
      {|
void %s(%s, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
%s
  }
}
|}
      name params_serial
      (Option.value ~default:body serial_body)
  in
  let psim_src =
    Fmt.str
      {|
void %s(%s, int64 n) {
  psim gang_size(64) num_spmd_threads(n) {
    int64 i = psim_thread_num();
%s
  }
}
|}
      name params_psim body
  in
  let hand m =
    if inplace then Hw.map_inplace m name ~elem:Pir.Types.I8 ~inputs:hand_inputs ~vop ~sop
    else Hw.map m name ~elem:Pir.Types.I8 ~inputs:hand_inputs ~vop ~sop
  in
  let buffers =
    List.mapi
      (fun idx a ->
        if idx = List.length arrays - 1 then inout_u8 a (70 + idx)
        else in_u8 a (70 + idx))
      arrays
  in
  {
    kname = name;
    family;
    gang = 64;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers;
    scalars = [ vi pixels ];
    float_tolerance = 0.0;
  }

let background_family =
  [
    (* lo = v < lo ? lo - 1 : lo  (saturating grow downward) *)
    bg_kernel ~name:"background_grow_range_slow" ~family:"Background"
      ~arrays:[ "value"; "lo" ]
      ~serial_body:
        {|
    int32 v = (int32)value[i];
    int32 l = (int32)lo[i];
    int32 d = l - 1 < 0 ? 0 : l - 1;
    lo[i] = (uint8)(v < l ? d : l);|}
      ~body:
        {|
    uint8 v = value[i];
    uint8 l = lo[i];
    lo[i] = v < l ? sub_sat(l, (uint8)1) : l;|}
      ~hand_inputs:1 ~inplace:true
      ~vop:(fun b vs ->
        match vs with
        | [ v; l ] ->
            let c = Pir.Builder.icmp b Pir.Instr.Ult v l in
            let dec =
              Pir.Builder.ibin b Pir.Instr.USubSat l
                (Pir.Instr.cvec Pir.Types.I8
                   (Array.make (Pir.Types.lanes (Pir.Builder.ty_of b l)) 1L))
            in
            Pir.Builder.select b c dec l
        | _ -> assert false)
      ~sop:(fun b vs ->
        match vs with
        | [ v; l ] ->
            let c = Pir.Builder.icmp b Pir.Instr.Ult v l in
            let dec =
              Pir.Builder.ibin b Pir.Instr.USubSat l (Pir.Instr.cint Pir.Types.I8 1L)
            in
            Pir.Builder.select b c dec l
        | _ -> assert false)
      ();
    (* lo = min(v, lo): the "fast" variant *)
    bg_kernel ~name:"background_grow_range_fast" ~family:"Background"
      ~arrays:[ "value"; "lo" ]
      ~serial_body:
        {|
    int32 v = (int32)value[i];
    int32 l = (int32)lo[i];
    lo[i] = (uint8)(v < l ? v : l);|}
      ~body:
        {|
    lo[i] = min(value[i], lo[i]);|}
      ~hand_inputs:1 ~inplace:true
      ~vop:(fun b vs ->
        match vs with
        | [ v; l ] -> Pir.Builder.ibin b Pir.Instr.UMin v l
        | _ -> assert false)
      ~sop:(fun b vs ->
        match vs with
        | [ v; l ] -> Pir.Builder.ibin b Pir.Instr.UMin v l
        | _ -> assert false)
      ();
    (* cnt = sat_add(cnt, v < lo || v > hi) *)
    bg_kernel ~name:"background_increment_count" ~family:"Background"
      ~arrays:[ "value"; "lo"; "hi"; "cnt" ]
      ~serial_body:
        {|
    int32 v = (int32)value[i];
    bool outside = v < (int32)lo[i] || v > (int32)hi[i];
    int32 nc = (int32)cnt[i] + (outside ? 1 : 0);
    cnt[i] = (uint8)(nc > 255 ? 255 : nc);|}
      ~body:
        {|
    uint8 v = value[i];
    bool outside = v < lo[i] || v > hi[i];
    cnt[i] = add_sat(cnt[i], outside ? (uint8)1 : (uint8)0);|}
      ~hand_inputs:3 ~inplace:true
      ~vop:(fun b vs ->
        match vs with
        | [ v; l; h; c ] ->
            let lanes = Pir.Types.lanes (Pir.Builder.ty_of b v) in
            let c1 = Pir.Builder.icmp b Pir.Instr.Ult v l in
            let c2 = Pir.Builder.icmp b Pir.Instr.Ugt v h in
            let o = Pir.Builder.or_ b c1 c2 in
            let one = Pir.Instr.cvec Pir.Types.I8 (Array.make lanes 1L) in
            let zero = Pir.Instr.cvec Pir.Types.I8 (Array.make lanes 0L) in
            let inc = Pir.Builder.select b o one zero in
            Pir.Builder.ibin b Pir.Instr.UAddSat c inc
        | _ -> assert false)
      ~sop:(fun b vs ->
        match vs with
        | [ v; l; h; c ] ->
            let c1 = Pir.Builder.icmp b Pir.Instr.Ult v l in
            let c2 = Pir.Builder.icmp b Pir.Instr.Ugt v h in
            let o = Pir.Builder.or_ b c1 c2 in
            let inc =
              Pir.Builder.select b o (Pir.Instr.cint Pir.Types.I8 1L)
                (Pir.Instr.cint Pir.Types.I8 0L)
            in
            Pir.Builder.ibin b Pir.Instr.UAddSat c inc
        | _ -> assert false)
      ();
    (* hi = v > hi ? sat(hi+1) : hi  — shift range upward *)
    bg_kernel ~name:"background_shift_range" ~family:"Background"
      ~arrays:[ "value"; "hi" ]
      ~serial_body:
        {|
    int32 v = (int32)value[i];
    int32 h = (int32)hi[i];
    int32 u = h + 1 > 255 ? 255 : h + 1;
    hi[i] = (uint8)(v > h ? u : h);|}
      ~body:
        {|
    uint8 v = value[i];
    uint8 h = hi[i];
    hi[i] = v > h ? add_sat(h, (uint8)1) : h;|}
      ~hand_inputs:1 ~inplace:true
      ~vop:(fun b vs ->
        match vs with
        | [ v; h ] ->
            let c = Pir.Builder.icmp b Pir.Instr.Ugt v h in
            let inc =
              Pir.Builder.ibin b Pir.Instr.UAddSat h
                (Pir.Instr.cvec Pir.Types.I8
                   (Array.make (Pir.Types.lanes (Pir.Builder.ty_of b h)) 1L))
            in
            Pir.Builder.select b c inc h
        | _ -> assert false)
      ~sop:(fun b vs ->
        match vs with
        | [ v; h ] ->
            let c = Pir.Builder.icmp b Pir.Instr.Ugt v h in
            let inc =
              Pir.Builder.ibin b Pir.Instr.UAddSat h (Pir.Instr.cint Pir.Types.I8 1L)
            in
            Pir.Builder.select b c inc h
        | _ -> assert false)
      ();
    (* adjust range by count against threshold (two saturating nudges) *)
    bg_kernel ~name:"background_adjust_range" ~family:"Background"
      ~arrays:[ "cnt"; "lo"; "hi" ]
      ~serial_body:
        {|
    int32 c = (int32)cnt[i];
    int32 l = (int32)lo[i];
    int32 h = (int32)hi[i];
    int32 up = c > 16 ? 1 : 0;
    int32 dn = c < 16 ? 1 : 0;
    int32 nl = l - up < 0 ? 0 : l - up;
    int32 nh0 = h + up > 255 ? 255 : h + up;
    int32 nh = nh0 - dn < 0 ? 0 : nh0 - dn;
    lo[i] = (uint8)nl;
    hi[i] = (uint8)nh;|}
      ~body:
        {|
    uint8 c = cnt[i];
    uint8 l = lo[i];
    uint8 h = hi[i];
    uint8 up = c > 16 ? (uint8)1 : (uint8)0;
    uint8 dn = c < 16 ? (uint8)1 : (uint8)0;
    lo[i] = sub_sat(l, up);
    hi[i] = sub_sat(add_sat(h, up), dn);|}
      ~hand_inputs:2 ~inplace:true
      ~vop:(fun b vs ->
        match vs with
        | [ c; l; h ] ->
            (* the in-place combinator updates only the last array; the
               psim/serial sources update both lo and hi, so the hand
               version mirrors the final hi formula (lo is handled by a
               separate map below in the same function) *)
            let lanes = Pir.Types.lanes (Pir.Builder.ty_of b c) in
            let k16 = Pir.Instr.cvec Pir.Types.I8 (Array.make lanes 16L) in
            let one = Pir.Instr.cvec Pir.Types.I8 (Array.make lanes 1L) in
            let zero = Pir.Instr.cvec Pir.Types.I8 (Array.make lanes 0L) in
            let up = Pir.Builder.select b (Pir.Builder.icmp b Pir.Instr.Ugt c k16) one zero in
            let dn = Pir.Builder.select b (Pir.Builder.icmp b Pir.Instr.Ult c k16) one zero in
            ignore l;
            Pir.Builder.ibin b Pir.Instr.USubSat
              (Pir.Builder.ibin b Pir.Instr.UAddSat h up)
              dn
        | _ -> assert false)
      ~sop:(fun b vs ->
        match vs with
        | [ c; l; h ] ->
            let k16 = Pir.Instr.cint Pir.Types.I8 16L in
            let one = Pir.Instr.cint Pir.Types.I8 1L in
            let zero = Pir.Instr.cint Pir.Types.I8 0L in
            let up = Pir.Builder.select b (Pir.Builder.icmp b Pir.Instr.Ugt c k16) one zero in
            let dn = Pir.Builder.select b (Pir.Builder.icmp b Pir.Instr.Ult c k16) one zero in
            ignore l;
            Pir.Builder.ibin b Pir.Instr.USubSat
              (Pir.Builder.ibin b Pir.Instr.UAddSat h up)
              dn
        | _ -> assert false)
      ();
  ]

let kernels =
  operation_binary_8u
  @ [ alpha_blending; alpha_premultiply; binarization; add_feature_difference ]
  @ background_family
