(** Kernel and workload descriptions for the benchmark suites.

    Every benchmark provides up to four implementations of one function
    with an identical signature (buffer pointers first, then scalar
    arguments):

    - [serial_src]: plain serial PsimC — compiled as-is for the scalar
      baseline, and through [Pautovec] for the auto-vectorized baseline;
    - [psim_src]: the Parsimony port (explicit [psim] regions);
    - [hand]: a hand-written implementation built directly as vector PIR
      at machine width, playing the role of the Simd Library's AVX-512
      intrinsics code.

    Buffers are allocated with 64 bytes of slack beyond their logical
    length so strided shuffle loads may touch (but never modify) the
    padding — the same row-padding contract the Simd Library uses. *)

type buffer = {
  bname : string;
  elem : Pir.Types.scalar;
  len : int;
  init : int -> Pmachine.Value.t;
  output : bool;  (** compared across implementations *)
}

type kernel = {
  kname : string;  (** function name defined by every implementation *)
  family : string;
  gang : int;  (** gang size the Parsimony port chose *)
  psim_src : string;
  serial_src : string;
  hand : (Pir.Func.modul -> unit) option;
  buffers : buffer list;
  scalars : Pmachine.Value.t list;
  float_tolerance : float;  (** 0. = bitwise comparison *)
}

(* -- deterministic data generation -- *)

(* split-mix style PRNG so workloads are reproducible *)
let mix seed i =
  let z = Int64.add (Int64.of_int seed) (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (i + 1))) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let u8 seed i = Pmachine.Value.I (Int64.logand (mix seed i) 0xFFL)
let u16 seed i = Pmachine.Value.I (Int64.logand (mix seed i) 0xFFFFL)
let i16 seed i = Pmachine.Value.I (Int64.logand (mix seed i) 0xFFFFL)

let f32 seed i =
  let v = Int64.to_float (Int64.logand (mix seed i) 0xFFFFL) /. 65536.0 in
  Pmachine.Value.F (Pmachine.Value.round_float Pir.Types.F32 ((v *. 2.0) -. 1.0))

let f32_pos seed i =
  let v = Int64.to_float (Int64.logand (mix seed i) 0xFFFFL) /. 65536.0 in
  Pmachine.Value.F (Pmachine.Value.round_float Pir.Types.F32 (v +. 0.001))

let zero8 _ = Pmachine.Value.I 0L
let zero16 _ = Pmachine.Value.I 0L
let zero32f _ = Pmachine.Value.F 0.0
let zero64 _ = Pmachine.Value.I 0L

(* -- standard image geometry -- *)

(* Logical image: [width] x [height], row stride [width] (tight), with
   allocation slack handled by the runner. Small enough to interpret
   quickly, large enough that gang-loop overheads are amortized. *)
let width = 128
let height = 16
let pixels = width * height

let in_u8 name seed = { bname = name; elem = Pir.Types.I8; len = pixels; init = u8 seed; output = false }
let out_u8 name = { bname = name; elem = Pir.Types.I8; len = pixels; init = zero8; output = true }
let inout_u8 name seed =
  { bname = name; elem = Pir.Types.I8; len = pixels; init = u8 seed; output = true }
let in_f32 name seed = { bname = name; elem = Pir.Types.F32; len = pixels; init = f32 seed; output = false }
let out_f32 name = { bname = name; elem = Pir.Types.F32; len = pixels; init = zero32f; output = true }
let out_i16 name = { bname = name; elem = Pir.Types.I16; len = pixels; init = zero16; output = true }
let out_u64 name len = { bname = name; elem = Pir.Types.I64; len; init = zero64; output = true }

let vi v = Pmachine.Value.I (Int64.of_int v)

(** Count non-empty, non-comment lines — the code-size metric. *)
let source_lines src =
  String.split_on_char '\n' src
  |> List.filter (fun l ->
         let l = String.trim l in
         String.length l > 0 && not (String.length l >= 2 && String.sub l 0 2 = "//"))
  |> List.length

(** Replace the first occurrence of [sub] in [s] with [by]. *)
let replace_once ~sub ~by s =
  let n = String.length s and m = String.length sub in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)
