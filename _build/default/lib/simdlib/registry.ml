(** All Simd Library benchmark kernels, in suite order. *)

let all : Workload.kernel list =
  Kernels_pixel.kernels @ Kernels_convert.kernels @ Kernels_filter.kernels @ Kernels_geom.kernels @ Kernels_stat.kernels @ Kernels_neural.kernels
  @ Kernels_misc.kernels

let find name =
  List.find_opt (fun (k : Workload.kernel) -> k.kname = name) all
