(** Bulk data movement kernels: copy, fill (u8/u32), and widening copy.
    The memory-bound end of the suite — every implementation saturates
    the same bandwidth, so speedups flatten here (the left tail of the
    paper's Figure 5). *)

open Workload

let copy_u8 =
  let serial_src =
    {|
void copy_u8(uint8* restrict src, uint8* restrict dst, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    dst[i] = src[i];
  }
}
|}
  in
  let psim_src =
    {|
void copy_u8(uint8* src, uint8* dst, int64 n) {
  psim gang_size(64) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    dst[i] = src[i];
  }
}
|}
  in
  let hand m =
    Hw.map m "copy_u8" ~elem:Pir.Types.I8 ~inputs:1
      ~vop:(fun _ vs -> List.hd vs)
      ~sop:(fun _ vs -> List.hd vs)
  in
  {
    kname = "copy_u8";
    family = "Copy";
    gang = 64;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers = [ in_u8 "src" 601; out_u8 "dst" ];
    scalars = [ vi pixels ];
    float_tolerance = 0.0;
  }

let fill_u8 =
  let serial_src =
    {|
void fill_u8(uint8* restrict dst, uint8 value, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    dst[i] = value;
  }
}
|}
  in
  let psim_src =
    {|
void fill_u8(uint8* dst, uint8 value, int64 n) {
  psim gang_size(64) num_spmd_threads(n) {
    dst[psim_thread_num()] = value;
  }
}
|}
  in
  let hand m =
    let open Pir in
    Hw.define m "fill_u8" ~ptrs:[ Types.I8 ] ~scalars:[ Types.i8 ]
      ~emit:(fun b ~ptrs ~scalars ~n ->
        let dst = List.hd ptrs and v = List.hd scalars in
        let vl = 64 in
        let vv = Builder.splat b v vl in
        Hw.strip_mined_loop b ~n ~vl
          ~vec_body:(fun b i -> Builder.vstore b vv (Builder.gep b dst i))
          ~scalar_body:(fun b j -> Builder.store b v (Builder.gep b dst j)))
  in
  {
    kname = "fill_u8";
    family = "Fill";
    gang = 64;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers = [ out_u8 "dst" ];
    scalars = [ vi 0xA5; vi pixels ];
    float_tolerance = 0.0;
  }

let fill_bgra =
  let serial_src =
    {|
void fill_bgra(uint32* restrict dst, uint32 value, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    dst[i] = value;
  }
}
|}
  in
  let psim_src =
    {|
void fill_bgra(uint32* dst, uint32 value, int64 n) {
  psim gang_size(16) num_spmd_threads(n) {
    dst[psim_thread_num()] = value;
  }
}
|}
  in
  let hand m =
    let open Pir in
    Hw.define m "fill_bgra" ~ptrs:[ Types.I32 ] ~scalars:[ Types.i32 ]
      ~emit:(fun b ~ptrs ~scalars ~n ->
        let dst = List.hd ptrs and v = List.hd scalars in
        let vl = 16 in
        let vv = Builder.splat b v vl in
        Hw.strip_mined_loop b ~n ~vl
          ~vec_body:(fun b i -> Builder.vstore b vv (Builder.gep b dst i))
          ~scalar_body:(fun b j -> Builder.store b v (Builder.gep b dst j)))
  in
  {
    kname = "fill_bgra";
    family = "Fill";
    gang = 16;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers =
      [ { bname = "dst"; elem = Pir.Types.I32; len = pixels; init = (fun _ -> Pmachine.Value.I 0L); output = true } ];
    scalars = [ vi 0x40E0D0FF; vi pixels ];
    float_tolerance = 0.0;
  }

let gray_to_int16 =
  let serial_src =
    {|
void gray_to_int16(uint8* restrict src, int16* restrict dst, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    dst[i] = (int16)(int32)src[i];
  }
}
|}
  in
  let psim_src =
    {|
void gray_to_int16(uint8* src, int16* dst, int64 n) {
  psim gang_size(32) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    dst[i] = (int16)(int32)src[i];
  }
}
|}
  in
  let hand m =
    let open Pir in
    Hw.define m "gray_to_int16" ~ptrs:[ Types.I8; Types.I16 ] ~scalars:[]
      ~emit:(fun b ~ptrs ~scalars:_ ~n ->
        let src, dst = match ptrs with [ s; d ] -> (s, d) | _ -> assert false in
        let vl = 32 in
        Hw.strip_mined_loop b ~n ~vl
          ~vec_body:(fun b i ->
            let v = Builder.vload b (Builder.gep b src i) vl in
            let w = Builder.cast b Instr.ZExt v (Types.Vec (Types.I16, vl)) in
            Builder.vstore b w (Builder.gep b dst i))
          ~scalar_body:(fun b j ->
            let v = Builder.load b (Builder.gep b src j) in
            Builder.store b
              (Builder.cast b Instr.ZExt v Types.i16)
              (Builder.gep b dst j)))
  in
  {
    kname = "gray_to_int16";
    family = "Convert";
    gang = 32;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers = [ in_u8 "src" 602; out_i16 "dst" ];
    scalars = [ vi pixels ];
    float_tolerance = 0.0;
  }

(* segmentation: mask relabeling (ternary select on equality) *)
let segmentation_change_index =
  let serial_src =
    {|
void segmentation_change_index(uint8* restrict mask, uint8 old_index, uint8 new_index, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    int32 m = (int32)mask[i];
    mask[i] = (uint8)(m == (int32)old_index ? (int32)new_index : m);
  }
}
|}
  in
  let psim_src =
    {|
void segmentation_change_index(uint8* mask, uint8 old_index, uint8 new_index, int64 n) {
  psim gang_size(64) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    uint8 m = mask[i];
    mask[i] = m == old_index ? new_index : m;
  }
}
|}
  in
  let hand m =
    let open Pir in
    Hw.define m "segmentation_change_index" ~ptrs:[ Types.I8 ]
      ~scalars:[ Types.i8; Types.i8 ]
      ~emit:(fun b ~ptrs ~scalars ~n ->
        let mask = List.hd ptrs in
        let old_i, new_i =
          match scalars with [ o; nw ] -> (o, nw) | _ -> assert false
        in
        let vl = 64 in
        Hw.strip_mined_loop b ~n ~vl
          ~vec_body:(fun b i ->
            let addr = Builder.gep b mask i in
            let v = Builder.vload b addr vl in
            let c = Builder.icmp b Instr.Eq v (Builder.splat b old_i vl) in
            let r = Builder.select b c (Builder.splat b new_i vl) v in
            Builder.vstore b r addr)
          ~scalar_body:(fun b j ->
            let addr = Builder.gep b mask j in
            let v = Builder.load b addr in
            let c = Builder.icmp b Instr.Eq v old_i in
            Builder.store b (Builder.select b c new_i v) addr))
  in
  {
    kname = "segmentation_change_index";
    family = "Segmentation";
    gang = 64;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers = [ { (inout_u8 "mask" 603) with init = (fun i -> Pmachine.Value.I (Int64.of_int (i mod 7))) } ];
    scalars = [ vi 3; vi 5; vi pixels ];
    float_tolerance = 0.0;
  }

let kernels = [ copy_u8; fill_u8; fill_bgra; gray_to_int16; segmentation_change_index ]
