(** Geometric kernels: 2x2 stretch/reduce (stride-2 interleaved access)
    and bilinear resize (data-dependent gathers — slow for everyone, the
    pattern where gather-based vectorization barely pays, paper
    §4.2.2). *)

open Workload

let u8buf name seed len = { bname = name; elem = Pir.Types.I8; len; init = u8 seed; output = false }
let u8out name len = { bname = name; elem = Pir.Types.I8; len; init = zero8; output = true }

(* -- stretch_gray_2x2: each input pixel becomes a 2x2 block -- *)

let stretch_gray_2x2 =
  let serial_src =
    {|
void stretch_gray_2x2(uint8* restrict src, uint8* restrict dst, int64 w, int64 h) {
  for (int64 y = 0; y < h; y = y + 1) {
    for (int64 x = 0; x < w; x = x + 1) {
      uint8 g = src[y * w + x];
      int64 o = 2 * y * 2 * w + 2 * x;
      dst[o] = g;
      dst[o + 1] = g;
      dst[o + 2 * w] = g;
      dst[o + 2 * w + 1] = g;
    }
  }
}
|}
  in
  let psim_src =
    {|
void stretch_gray_2x2(uint8* src, uint8* dst, int64 w, int64 h) {
  for (int64 y = 0; y < h; y = y + 1) {
    int64 inrow = y * w;
    int64 outrow = 2 * y * 2 * w;
    psim gang_size(64) num_spmd_threads(w) {
      int64 x = psim_thread_num();
      uint8 g = src[inrow + x];
      int64 o = outrow + 2 * x;
      dst[o] = g;
      dst[o + 1] = g;
      dst[o + 2 * w] = g;
      dst[o + 2 * w + 1] = g;
    }
  }
}
|}
  in
  let hand m =
    let open Pir in
    Hw.define m "stretch_gray_2x2" ~ptrs:[ Types.I8; Types.I8 ]
      ~scalars:[ Types.i64 ]
      ~emit:(fun b ~ptrs ~scalars ~n ->
        let src, dst = match ptrs with [ s; d ] -> (s, d) | _ -> assert false in
        let w = List.hd scalars in
        let h = n in
        let vl = 64 in
        ignore
          (Hw.counted_loop b ~start:(Instr.ci64 0) ~stop:h ~step:1 ~accs:[]
             ~body:(fun b ~iv:y ~accs ->
               let inrow = Builder.mul b y w in
               let outrow =
                 Builder.mul b (Builder.mul b y (Instr.ci64 2))
                   (Builder.mul b w (Instr.ci64 2))
               in
               let row0 = Builder.gep b dst outrow in
               let row1 =
                 Builder.gep b dst
                   (Builder.add b outrow (Builder.mul b w (Instr.ci64 2)))
               in
               Hw.strip_mined_loop b ~n:w ~vl
                 ~vec_body:(fun b x ->
                   let g = Builder.vload b (Builder.gep b src (Builder.add b inrow x)) vl in
                   Hw.interleave_store b ~vl ~k:2 row0 x [ g; g ];
                   Hw.interleave_store b ~vl ~k:2 row1 x [ g; g ])
                 ~scalar_body:(fun b x ->
                   let g = Builder.load b (Builder.gep b src (Builder.add b inrow x)) in
                   let o = Builder.mul b x (Instr.ci64 2) in
                   Builder.store b g (Builder.gep b row0 o);
                   Builder.store b g (Builder.gep b row0 (Builder.add b o (Instr.ci64 1)));
                   Builder.store b g (Builder.gep b row1 o);
                   Builder.store b g (Builder.gep b row1 (Builder.add b o (Instr.ci64 1))));
               accs)))
  in
  {
    kname = "stretch_gray_2x2";
    family = "StretchGray2x2";
    gang = 64;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers = [ u8buf "src" 301 pixels; u8out "dst" (4 * pixels) ];
    scalars = [ vi width; vi height ];
    float_tolerance = 0.0;
  }

(* -- reduce_gray_2x2: average 2x2 blocks -- *)

let reduce_gray_2x2 =
  let serial_src =
    {|
void reduce_gray_2x2(uint8* restrict src, uint8* restrict dst, int64 w, int64 h) {
  for (int64 y = 0; y < h / 2; y = y + 1) {
    for (int64 x = 0; x < w / 2; x = x + 1) {
      int64 i = 2 * y * w + 2 * x;
      int32 s = (int32)src[i] + (int32)src[i + 1] + (int32)src[i + w] + (int32)src[i + w + 1];
      dst[y * (w / 2) + x] = (uint8)((s + 2) >> 2);
    }
  }
}
|}
  in
  let psim_src =
    {|
void reduce_gray_2x2(uint8* src, uint8* dst, int64 w, int64 h) {
  for (int64 y = 0; y < h / 2; y = y + 1) {
    int64 inrow = 2 * y * w;
    int64 outrow = y * (w / 2);
    psim gang_size(32) num_spmd_threads(w / 2) {
      int64 x = psim_thread_num();
      int64 i = inrow + 2 * x;
      int32 s = (int32)src[i] + (int32)src[i + 1] + (int32)src[i + w] + (int32)src[i + w + 1];
      dst[outrow + x] = (uint8)((s + 2) >> 2);
    }
  }
}
|}
  in
  let hand m =
    let open Pir in
    Hw.define m "reduce_gray_2x2" ~ptrs:[ Types.I8; Types.I8 ]
      ~scalars:[ Types.i64 ]
      ~emit:(fun b ~ptrs ~scalars ~n ->
        let src, dst = match ptrs with [ s; d ] -> (s, d) | _ -> assert false in
        let w = List.hd scalars in
        let h = n in
        let vl = 32 in
        let h2 = Builder.ibin b Instr.SDiv h (Instr.ci64 2) in
        let w2 = Builder.ibin b Instr.SDiv w (Instr.ci64 2) in
        ignore
          (Hw.counted_loop b ~start:(Instr.ci64 0) ~stop:h2 ~step:1 ~accs:[]
             ~body:(fun b ~iv:y ~accs ->
               let inrow = Builder.mul b (Builder.mul b y (Instr.ci64 2)) w in
               let outrow = Builder.mul b y w2 in
               let row0 = Builder.gep b src inrow in
               let row1 = Builder.gep b src (Builder.add b inrow w) in
               Hw.strip_mined_loop b ~n:w2 ~vl
                 ~vec_body:(fun b x ->
                   let top = Hw.deinterleave_load b ~vl ~k:2 row0 x in
                   let bot = Hw.deinterleave_load b ~vl ~k:2 row1 x in
                   match (top, bot) with
                   | [ t0; t1 ], [ b0; b1 ] ->
                       (* avg of 4 with rounding via two pavg-style steps *)
                       let a1 = Builder.ibin b Instr.AvgrU t0 t1 in
                       let a2 = Builder.ibin b Instr.AvgrU b0 b1 in
                       (* (a1 + a2) / 2 without extra rounding bias:
                          match the (s + 2) >> 2 formula exactly by
                          recomputing at 16 bits *)
                       ignore (a1, a2);
                       let w16 v =
                         Builder.cast b Instr.ZExt v (Types.Vec (Types.I16, vl))
                       in
                       let s =
                         Builder.ibin b Instr.Add
                           (Builder.ibin b Instr.Add (w16 t0) (w16 t1))
                           (Builder.ibin b Instr.Add (w16 b0) (w16 b1))
                       in
                       let r =
                         Builder.ibin b Instr.LShr
                           (Builder.ibin b Instr.Add s
                              (Instr.cvec Types.I16 (Array.make vl 2L)))
                           (Instr.cvec Types.I16 (Array.make vl 2L))
                       in
                       Builder.vstore b
                         (Builder.cast b Instr.Trunc r (Types.Vec (Types.I8, vl)))
                         (Builder.gep b dst (Builder.add b outrow x))
                   | _ -> assert false)
                 ~scalar_body:(fun b x ->
                   let i = Builder.add b inrow (Builder.mul b x (Instr.ci64 2)) in
                   let ld off =
                     Builder.cast b Instr.ZExt
                       (Builder.load b (Builder.gep b src (Builder.add b i (Instr.ci64 off))))
                       Types.i16
                   in
                   let s =
                     Builder.ibin b Instr.Add
                       (Builder.ibin b Instr.Add (ld 0) (ld 1))
                       (Builder.ibin b Instr.Add
                          (Builder.cast b Instr.ZExt
                             (Builder.load b
                                (Builder.gep b src (Builder.add b i w)))
                             Types.i16)
                          (Builder.cast b Instr.ZExt
                             (Builder.load b
                                (Builder.gep b src
                                   (Builder.add b (Builder.add b i w) (Instr.ci64 1))))
                             Types.i16))
                   in
                   let r =
                     Builder.ibin b Instr.LShr
                       (Builder.ibin b Instr.Add s (Instr.cint Types.I16 2L))
                       (Instr.cint Types.I16 2L)
                   in
                   Builder.store b
                     (Builder.cast b Instr.Trunc r Types.i8)
                     (Builder.gep b dst (Builder.add b outrow x)));
               accs)))
  in
  {
    kname = "reduce_gray_2x2";
    family = "ReduceGray2x2";
    gang = 32;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers = [ u8buf "src" 302 pixels; u8out "dst" (pixels / 4) ];
    scalars = [ vi width; vi height ];
    float_tolerance = 0.0;
  }

(* -- resize_bilinear (horizontal pass, fixed 4/3 downscale):
   out[i] samples src at i*0.75 with 8-bit fractional weights -- *)

let resize_bilinear =
  let body =
    {|
    int64 t = i * 192;
    int64 ix = t >> 8;
    int32 f = (int32)(t & 255);
    int32 a = (int32)src[ix];
    int32 c = (int32)src[ix + 1];
    dst[i] = (uint8)(((256 - f) * a + f * c + 128) >> 8);|}
  in
  let serial_src =
    Fmt.str
      {|
void resize_bilinear(uint8* restrict src, uint8* restrict dst, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
%s
  }
}
|}
      body
  in
  let psim_src =
    Fmt.str
      {|
void resize_bilinear(uint8* src, uint8* dst, int64 n) {
  psim gang_size(16) num_spmd_threads(n) {
    int64 i = psim_thread_num();
%s
  }
}
|}
      body
  in
  let hand m =
    let open Pir in
    Hw.define m "resize_bilinear" ~ptrs:[ Types.I8; Types.I8 ] ~scalars:[]
      ~emit:(fun b ~ptrs ~scalars:_ ~n ->
        let src, dst = match ptrs with [ s; d ] -> (s, d) | _ -> assert false in
        let vl = 16 in
        Hw.strip_mined_loop b ~n ~vl
          ~vec_body:(fun b i ->
            let iv =
              Builder.ibin b Instr.Add (Builder.splat b i vl)
                (Instr.iota Types.I64 vl)
            in
            let t = Builder.ibin b Instr.Mul iv (Instr.cvec Types.I64 (Array.make vl 192L)) in
            let ix = Builder.ibin b Instr.LShr t (Instr.cvec Types.I64 (Array.make vl 8L)) in
            let f64 = Builder.ibin b Instr.And t (Instr.cvec Types.I64 (Array.make vl 255L)) in
            let f = Builder.cast b Instr.Trunc f64 (Types.Vec (Types.I32, vl)) in
            (* even hand-tuned code needs gathers here *)
            let a = Builder.gather b src ix in
            let ix1 = Builder.ibin b Instr.Add ix (Instr.cvec Types.I64 (Array.make vl 1L)) in
            let c = Builder.gather b src ix1 in
            let w v = Builder.cast b Instr.ZExt v (Types.Vec (Types.I32, vl)) in
            let k v = Instr.cvec Types.I32 (Array.make vl v) in
            let r =
              Builder.ibin b Instr.LShr
                (Builder.ibin b Instr.Add
                   (Builder.ibin b Instr.Add
                      (Builder.ibin b Instr.Mul (Builder.ibin b Instr.Sub (k 256L) f) (w a))
                      (Builder.ibin b Instr.Mul f (w c)))
                   (k 128L))
                (k 8L)
            in
            Builder.vstore b
              (Builder.cast b Instr.Trunc r (Types.Vec (Types.I8, vl)))
              (Builder.gep b dst i))
          ~scalar_body:(fun b i ->
            let t = Builder.mul b i (Instr.ci64 192) in
            let ix = Builder.lshr b t (Instr.ci64 8) in
            let f =
              Builder.cast b Instr.Trunc
                (Builder.and_ b t (Instr.ci64 255))
                Types.i32
            in
            let ld p = Builder.cast b Instr.ZExt (Builder.load b p) Types.i32 in
            let a = ld (Builder.gep b src ix) in
            let c = ld (Builder.gep b src (Builder.add b ix (Instr.ci64 1))) in
            let k v = Instr.ci32 v in
            let r =
              Builder.lshr b
                (Builder.add b
                   (Builder.add b
                      (Builder.mul b (Builder.sub b (k 256) f) a)
                      (Builder.mul b f c))
                   (k 128))
                (k 8)
            in
            Builder.store b
              (Builder.cast b Instr.Trunc r Types.i8)
              (Builder.gep b dst i)))
  in
  {
    kname = "resize_bilinear";
    family = "ResizeBilinear";
    gang = 16;
    psim_src;
    serial_src;
    hand = Some hand;
    (* output length n with source long enough for ix+1 at i=n-1 *)
    buffers = [ u8buf "src" 303 pixels; u8out "dst" pixels ];
    scalars = [ vi (pixels - pixels / 4) ];
    float_tolerance = 0.0;
  }

let kernels = [ stretch_gray_2x2; reduce_gray_2x2; resize_bilinear ]
