lib/simdlib/kernels_pixel.ml: Array Builder Fmt Hw Instr List Option Pir String Types Workload
