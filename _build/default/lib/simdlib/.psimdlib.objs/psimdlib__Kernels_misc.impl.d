lib/simdlib/kernels_misc.ml: Builder Hw Instr Int64 List Pir Pmachine Types Workload
