lib/simdlib/registry.ml: Kernels_convert Kernels_filter Kernels_geom Kernels_misc Kernels_neural Kernels_pixel Kernels_stat List Workload
