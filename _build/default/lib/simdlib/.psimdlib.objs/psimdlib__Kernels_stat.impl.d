lib/simdlib/kernels_stat.ml: Array Builder Fmt Hw Instr List Pir Pmachine String Types Workload
