lib/simdlib/kernels_geom.ml: Array Builder Fmt Hw Instr List Pir Types Workload
