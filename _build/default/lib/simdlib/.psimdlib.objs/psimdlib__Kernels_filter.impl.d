lib/simdlib/kernels_filter.ml: Array Builder Fmt Hw Instr Int64 List Pir String Types Workload
