lib/simdlib/workload.ml: Int64 List Pir Pmachine String
