lib/simdlib/hw.ml: Array Builder Func Instr List Pir Types
