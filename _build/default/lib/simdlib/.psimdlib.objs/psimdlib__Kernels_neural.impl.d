lib/simdlib/kernels_neural.ml: Builder Fmt Hw Instr List Pir Pmachine String Types Workload
