lib/simdlib/kernels_convert.ml: Array Builder Fmt Hw Instr Int64 List Pir Pmachine Types Workload
