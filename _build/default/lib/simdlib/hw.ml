(** Builder combinators for the hand-written (intrinsics-style) kernel
    implementations.

    These play the role of the Simd Library's AVX-512 template code:
    each family (map / stencil / reduction / reorder) is a combinator
    that emits a machine-width vector loop plus a scalar tail, and each
    kernel instantiates it with its per-lane operation — written
    directly against the vector IR, exactly like intrinsics code is
    written against [_mm512_*]. *)

open Pir

let machine_bits = 512

(** Natural machine vector length for an element kind. *)
let vl_of (s : Types.scalar) = machine_bits / Types.scalar_bits s

(** Emit a counted loop [for iv = start; iv < stop; iv += step] with
    loop-carried values [accs]; [body] receives the induction variable
    and current accumulator values and returns their next values.
    Returns the final accumulator values (visible after the loop). *)
let counted_loop (b : Builder.t) ~start ~stop ~step ~accs ~body :
    Instr.operand list =
  let f = (Builder.current b).bname in
  ignore f;
  let pre = Builder.current b in
  let hdr = Builder.fresh_block b "hw.hdr" in
  let bod = Builder.fresh_block b "hw.body" in
  let ext = Builder.fresh_block b "hw.exit" in
  Builder.br b hdr.bname;
  Builder.position b hdr;
  let iv = Builder.phi b Types.i64 [ (pre.bname, start) ] in
  let acc_phis =
    List.map (fun (ty, init) -> Builder.phi b ty [ (pre.bname, init) ]) accs
  in
  let c = Builder.icmp b Instr.Slt iv stop in
  Builder.condbr b c bod.bname ext.bname;
  Builder.position b bod;
  let next_accs = body b ~iv ~accs:acc_phis in
  let iv' = Builder.add b iv (Instr.ci64 step) in
  let latch = Builder.current b in
  Builder.br b hdr.bname;
  let patch phi_op extra =
    let id = match phi_op with Instr.Var v -> v | _ -> assert false in
    hdr.instrs <-
      List.map
        (fun (ins : Instr.instr) ->
          if ins.id <> id then ins
          else
            match ins.op with
            | Instr.Phi inc -> { ins with op = Instr.Phi (inc @ [ extra ]) }
            | _ -> ins)
        hdr.instrs
  in
  patch iv (latch.bname, iv');
  List.iter2 (fun p n -> patch p (latch.bname, n)) acc_phis next_accs;
  Builder.position b ext;
  acc_phis

(** Vector main loop over [n] elements at [vl] lanes plus a scalar tail.
    [vec_body b i] processes elements [i, i+vl); [scalar_body b j]
    processes element [j]. *)
let strip_mined_loop (b : Builder.t) ~n ~vl ~vec_body ~scalar_body =
  let nvec =
    Builder.and_ b n (Instr.ci64 (lnot (vl - 1)))
  in
  ignore
    (counted_loop b ~start:(Instr.ci64 0) ~stop:nvec ~step:vl ~accs:[]
       ~body:(fun b ~iv ~accs ->
         vec_body b iv;
         accs));
  ignore
    (counted_loop b ~start:nvec ~stop:n ~step:1 ~accs:[]
       ~body:(fun b ~iv ~accs ->
         scalar_body b iv;
         accs))

(** Same, with vector accumulators reduced after the main loop and
    carried (as scalars) through the tail.  [finish] receives the final
    scalar accumulator values. *)
let strip_mined_reduce (b : Builder.t) ~n ~vl ~acc_specs ~vec_body ~reduce_kinds
    ~scalar_body ~finish =
  let nvec = Builder.and_ b n (Instr.ci64 (lnot (vl - 1))) in
  let final_vec_accs =
    counted_loop b ~start:(Instr.ci64 0) ~stop:nvec ~step:vl ~accs:acc_specs
      ~body:vec_body
  in
  let scalars =
    List.map2 (fun k acc -> Builder.reduce b k acc) reduce_kinds final_vec_accs
  in
  let scalar_acc_specs =
    List.map (fun s -> (Builder.ty_of b s, s)) scalars
  in
  let final_scalars =
    counted_loop b ~start:nvec ~stop:n ~step:1 ~accs:scalar_acc_specs
      ~body:scalar_body
  in
  finish b final_scalars

(* -- function scaffolding -- *)

(** Create a function [(ptr params) (scalar params) (n : i64) -> void]
    and hand the builder plus parameter operands to [emit]. *)
let define m name ~ptrs ~scalars ~emit =
  let nptr = List.length ptrs and nsc = List.length scalars in
  let params =
    List.mapi (fun i s -> (i, Types.Ptr s)) ptrs
    @ List.mapi (fun i t -> (nptr + i, t)) scalars
    @ [ (nptr + nsc, Types.i64) ]
  in
  let f = Func.create name ~params ~ret:Types.Void in
  let b = Builder.create f in
  let ptr_ops = List.mapi (fun i _ -> Instr.Var i) ptrs in
  let scalar_ops = List.mapi (fun i _ -> Instr.Var (nptr + i)) scalars in
  let n = Instr.Var (nptr + nsc) in
  emit b ~ptrs:ptr_ops ~scalars:scalar_ops ~n;
  Builder.ret_void b;
  Func.add_func m f

(* -- the family combinators -- *)

(** Element-wise map: [out[i] = op(in_0[i], ..., in_k[i])].  All arrays
    share element kind [elem]; [vop]/[sop] build the vector and scalar
    versions of the operation (they usually share code via [Builder]
    polymorphism over scalar/vector operands). *)
let map m name ~elem ~inputs ~vop ~sop =
  define m name
    ~ptrs:(List.init inputs (fun _ -> elem) @ [ elem ])
    ~scalars:[]
    ~emit:(fun b ~ptrs ~scalars:_ ~n ->
      let vl = vl_of elem in
      let ins, out =
        match List.rev ptrs with
        | out :: rins -> (List.rev rins, out)
        | [] -> assert false
      in
      strip_mined_loop b ~n ~vl
        ~vec_body:(fun b i ->
          let vs =
            List.map
              (fun p ->
                let addr = Builder.gep b p i in
                Builder.vload b addr vl)
              ins
          in
          let r = vop b vs in
          Builder.vstore b r (Builder.gep b out i))
        ~scalar_body:(fun b j ->
          let vs = List.map (fun p -> Builder.load b (Builder.gep b p j)) ins in
          let r = sop b vs in
          Builder.store b r (Builder.gep b out j)))

(** In-place variants where the last input is also the output
    ([dst = op(srcs..., dst)]). *)
let map_inplace m name ~elem ~inputs ~vop ~sop =
  define m name
    ~ptrs:(List.init inputs (fun _ -> elem) @ [ elem ])
    ~scalars:[]
    ~emit:(fun b ~ptrs ~scalars:_ ~n ->
      let vl = vl_of elem in
      let ins, out =
        match List.rev ptrs with
        | out :: rins -> (List.rev rins, out)
        | [] -> assert false
      in
      strip_mined_loop b ~n ~vl
        ~vec_body:(fun b i ->
          let addr_out = Builder.gep b out i in
          let vs =
            List.map (fun p -> Builder.vload b (Builder.gep b p i) vl) ins
            @ [ Builder.vload b addr_out vl ]
          in
          Builder.vstore b (vop b vs) addr_out)
        ~scalar_body:(fun b j ->
          let addr_out = Builder.gep b out j in
          let vs =
            List.map (fun p -> Builder.load b (Builder.gep b p j)) ins
            @ [ Builder.load b addr_out ]
          in
          Builder.store b (sop b vs) addr_out))

(* -- interleaved access helpers (intrinsics-style shuffle networks) -- *)

(* combine consecutive loaded vectors so lane l of the result is element
   [picks.(l)] of their concatenation; picks must be non-decreasing when
   more than two vectors are involved *)
let rec combine_picks (b : Builder.t) ~vl (vs : Instr.operand list)
    (picks : int array) : Instr.operand =
  match vs with
  | [] -> invalid_arg "Hw.combine_picks"
  | [ v ] -> Builder.shuffle b v v (Array.map (fun p -> min p (vl - 1)) picks)
  | [ v0; v1 ] -> Builder.shuffle b v0 v1 picks
  | _ ->
      let n = List.length vs in
      let half = (n + 1) / 2 in
      let split =
        let s = ref (Array.length picks) in
        Array.iteri (fun l p -> if p >= half * vl && l < !s then s := l) picks;
        !s
      in
      let left = Array.init (Array.length picks) (fun l -> if l < split then picks.(l) else 0) in
      let right =
        Array.init (Array.length picks) (fun l ->
            if l >= split then picks.(l) - (half * vl) else 0)
      in
      let lv = combine_picks b ~vl (List.filteri (fun i _ -> i < half) vs) left in
      let rv = combine_picks b ~vl (List.filteri (fun i _ -> i >= half) vs) right in
      Builder.shuffle b lv rv
        (Array.init (Array.length picks) (fun l -> if l < split then l else vl + l))

(** Load [k] interleaved channels of [vl] logical elements starting at
    element [i*k] of [ptr]: returns one vector per channel. *)
let deinterleave_load (b : Builder.t) ~vl ~k ptr i =
  let base = Builder.gep b ptr (Builder.mul b i (Instr.ci64 k)) in
  let vs =
    List.init k (fun j ->
        Builder.vload b
          (if j = 0 then base else Builder.gep b base (Instr.ci64 (j * vl)))
          vl)
  in
  List.init k (fun c ->
      combine_picks b ~vl vs (Array.init vl (fun l -> (l * k) + c)))

(** Store [k] channel vectors interleaved at element [i*k] of [ptr]. *)
let interleave_store (b : Builder.t) ~vl ~k ptr i (channels : Instr.operand list)
    =
  let base = Builder.gep b ptr (Builder.mul b i (Instr.ci64 k)) in
  for j = 0 to k - 1 do
    (* output vector j holds memory elements [j*vl, (j+1)*vl): element m
       comes from channel (m mod k), lane (m / k) *)
    let idx =
      Array.init vl (fun l ->
          let m = (j * vl) + l in
          ((m mod k) * vl) + (m / k))
    in
    (* build from pairs progressively: gather lanes from each channel via
       two-input shuffles over a concat tree *)
    let rec pick_from (chs : Instr.operand list) (idx : int array) =
      match chs with
      | [] -> invalid_arg "Hw.interleave_store"
      | [ c ] -> Builder.shuffle b c c (Array.map (fun p -> p mod vl) idx)
      | [ c0; c1 ] -> Builder.shuffle b c0 c1 idx
      | c0 :: rest ->
          (* select lanes from c0 where idx < vl, else from the rest *)
          let rest_v =
            pick_from rest (Array.map (fun p -> if p >= vl then p - vl else 0) idx)
          in
          Builder.shuffle b c0 rest_v
            (Array.init vl (fun l -> if idx.(l) < vl then idx.(l) else vl + l))
    in
    let v = pick_from channels idx in
    Builder.vstore b v
      (if j = 0 then base else Builder.gep b base (Instr.ci64 (j * vl)))
  done
