(** Color conversion and byte-reordering kernels: interleaved channel
    access is the defining feature — stride-2/3/4 loads and stores that
    Parsimony serves with packed loads + shuffles (§4.2.3's bounded
    strided access optimization) and that classic loop vectorizers
    typically punt on. *)

open Workload

let u8buf name seed len = { bname = name; elem = Pir.Types.I8; len; init = u8 seed; output = false }
let u8out name len = { bname = name; elem = Pir.Types.I8; len; init = zero8; output = true }
let u16buf name seed len = { bname = name; elem = Pir.Types.I16; len; init = u16 seed; output = false }
let u16out name len = { bname = name; elem = Pir.Types.I16; len; init = zero16; output = true }
let u32buf name seed len = { bname = name; elem = Pir.Types.I32; len; init = (fun i -> Pmachine.Value.I (Int64.logand (mix seed i) 0xFFFFFFFFL)); output = false }
let u32out name len = { bname = name; elem = Pir.Types.I32; len; init = (fun _ -> Pmachine.Value.I 0L); output = true }
let i16src name seed len = { bname = name; elem = Pir.Types.I16; len; init = i16 seed; output = false }

(* -- bgra_to_gray: gray = (28b + 151g + 77r + 128) >> 8 -- *)

let bgra_to_gray =
  let serial_src =
    {|
void bgra_to_gray(uint8* restrict bgra, uint8* restrict gray, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    int32 blue = (int32)bgra[4 * i];
    int32 green = (int32)bgra[4 * i + 1];
    int32 red = (int32)bgra[4 * i + 2];
    gray[i] = (uint8)((28 * blue + 151 * green + 77 * red + 128) >> 8);
  }
}
|}
  in
  let psim_src =
    {|
void bgra_to_gray(uint8* bgra, uint8* gray, int64 n) {
  psim gang_size(32) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    uint16 blue = (uint16)bgra[4 * i];
    uint16 green = (uint16)bgra[4 * i + 1];
    uint16 red = (uint16)bgra[4 * i + 2];
    gray[i] = (uint8)((28 * blue + 151 * green + 77 * red + 128) >> 8);
  }
}
|}
  in
  let hand m =
    let open Pir in
    Hw.define m "bgra_to_gray" ~ptrs:[ Types.I8; Types.I8 ] ~scalars:[]
      ~emit:(fun b ~ptrs ~scalars:_ ~n ->
        let bgra, gray = match ptrs with [ a; g ] -> (a, g) | _ -> assert false in
        let vl = 32 in
        let w v = Builder.cast b Instr.ZExt v (Types.Vec (Types.I16, vl)) in
        let k16 c = Instr.cvec Types.I16 (Array.make vl (Int64.of_int c)) in
        Hw.strip_mined_loop b ~n ~vl
          ~vec_body:(fun b i ->
            match Hw.deinterleave_load b ~vl ~k:4 bgra i with
            | [ blue; green; red; _alpha ] ->
                let t =
                  Builder.ibin b Instr.Add
                    (Builder.ibin b Instr.Add
                       (Builder.ibin b Instr.Mul (w blue) (k16 28))
                       (Builder.ibin b Instr.Mul (w green) (k16 151)))
                    (Builder.ibin b Instr.Add
                       (Builder.ibin b Instr.Mul (w red) (k16 77))
                       (k16 128))
                in
                let g = Builder.ibin b Instr.LShr t (k16 8) in
                let g8 = Builder.cast b Instr.Trunc g (Types.Vec (Types.I8, vl)) in
                Builder.vstore b g8 (Builder.gep b gray i)
            | _ -> assert false)
          ~scalar_body:(fun b j ->
            let j4 = Builder.mul b j (Instr.ci64 4) in
            let ld k =
              Builder.cast b Instr.ZExt
                (Builder.load b (Builder.gep b bgra (Builder.add b j4 (Instr.ci64 k))))
                Types.i16
            in
            let blue = ld 0 and green = ld 1 and red = ld 2 in
            let c x = Instr.cint Types.I16 (Int64.of_int x) in
            let t =
              Builder.ibin b Instr.Add
                (Builder.ibin b Instr.Add
                   (Builder.ibin b Instr.Mul blue (c 28))
                   (Builder.ibin b Instr.Mul green (c 151)))
                (Builder.ibin b Instr.Add (Builder.ibin b Instr.Mul red (c 77)) (c 128))
            in
            let g = Builder.ibin b Instr.LShr t (c 8) in
            Builder.store b (Builder.cast b Instr.Trunc g Types.i8)
              (Builder.gep b gray j)))
  in
  {
    kname = "bgra_to_gray";
    family = "BgraToGray";
    gang = 32;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers = [ u8buf "bgra" 101 (4 * pixels); u8out "gray" pixels ];
    scalars = [ vi pixels ];
    float_tolerance = 0.0;
  }

(* generic interleaved converter builder used by the remaining
   conversion kernels: serial + psim sources are provided as text; the
   hand implementation deinterleaves k_in channels, applies [vop], and
   stores k_out channels *)
let convert_kernel ~name ~family ~gang ~serial_src ~psim_src ~k_in ~k_out
    ~in_len ~out_len ~vl ~vop ~sop =
  let hand m =
    let open Pir in
    Hw.define m name ~ptrs:[ Types.I8; Types.I8 ] ~scalars:[]
      ~emit:(fun b ~ptrs ~scalars:_ ~n ->
        let src, dst = match ptrs with [ s; d ] -> (s, d) | _ -> assert false in
        Hw.strip_mined_loop b ~n ~vl
          ~vec_body:(fun b i ->
            let channels =
              if k_in = 1 then [ Builder.vload b (Builder.gep b src i) vl ]
              else Hw.deinterleave_load b ~vl ~k:k_in src i
            in
            let outs = vop b channels in
            if k_out = 1 then
              Builder.vstore b (List.hd outs) (Builder.gep b dst i)
            else Hw.interleave_store b ~vl ~k:k_out dst i outs)
          ~scalar_body:(fun b j ->
            let loads =
              List.init k_in (fun c ->
                  let idx =
                    if k_in = 1 then j
                    else Builder.add b (Builder.mul b j (Instr.ci64 k_in)) (Instr.ci64 c)
                  in
                  Builder.load b (Builder.gep b src idx))
            in
            let outs = sop b loads in
            List.iteri
              (fun c v ->
                let idx =
                  if k_out = 1 then j
                  else Builder.add b (Builder.mul b j (Instr.ci64 k_out)) (Instr.ci64 c)
                in
                Builder.store b v (Builder.gep b dst idx))
              outs))
  in
  {
    kname = name;
    family;
    gang;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers = [ u8buf "src" 103 in_len; u8out "dst" out_len ];
    scalars = [ vi pixels ];
    float_tolerance = 0.0;
  }

let gray_to_bgra =
  convert_kernel ~name:"gray_to_bgra" ~family:"GrayToBgra" ~gang:32
    ~serial_src:
      {|
void gray_to_bgra(uint8* restrict src, uint8* restrict dst, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    uint8 g = src[i];
    dst[4 * i] = g;
    dst[4 * i + 1] = g;
    dst[4 * i + 2] = g;
    dst[4 * i + 3] = 255;
  }
}
|}
    ~psim_src:
      {|
void gray_to_bgra(uint8* src, uint8* dst, int64 n) {
  psim gang_size(32) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    uint8 g = src[i];
    dst[4 * i] = g;
    dst[4 * i + 1] = g;
    dst[4 * i + 2] = g;
    dst[4 * i + 3] = 255;
  }
}
|}
    ~k_in:1 ~k_out:4 ~in_len:pixels ~out_len:(4 * pixels) ~vl:32
    ~vop:(fun b chs ->
      let g = List.hd chs in
      let alpha =
        Pir.Instr.cvec Pir.Types.I8
          (Array.make (Pir.Types.lanes (Pir.Builder.ty_of b g)) 255L)
      in
      [ g; g; g; alpha ])
    ~sop:(fun _ chs ->
      let g = List.hd chs in
      [ g; g; g; Pir.Instr.cint Pir.Types.I8 255L ])

let bgr_to_gray =
  convert_kernel ~name:"bgr_to_gray" ~family:"BgrToGray" ~gang:32
    ~serial_src:
      {|
void bgr_to_gray(uint8* restrict src, uint8* restrict dst, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    int32 blue = (int32)src[3 * i];
    int32 green = (int32)src[3 * i + 1];
    int32 red = (int32)src[3 * i + 2];
    dst[i] = (uint8)((28 * blue + 151 * green + 77 * red + 128) >> 8);
  }
}
|}
    ~psim_src:
      {|
void bgr_to_gray(uint8* src, uint8* dst, int64 n) {
  psim gang_size(32) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    uint16 blue = (uint16)src[3 * i];
    uint16 green = (uint16)src[3 * i + 1];
    uint16 red = (uint16)src[3 * i + 2];
    dst[i] = (uint8)((28 * blue + 151 * green + 77 * red + 128) >> 8);
  }
}
|}
    ~k_in:3 ~k_out:1 ~in_len:(3 * pixels) ~out_len:pixels ~vl:32
    ~vop:(fun b chs ->
      match chs with
      | [ blue; green; red ] ->
          let vl = Pir.Types.lanes (Pir.Builder.ty_of b blue) in
          let w v = Pir.Builder.cast b Pir.Instr.ZExt v (Pir.Types.Vec (Pir.Types.I16, vl)) in
          let k c = Pir.Instr.cvec Pir.Types.I16 (Array.make vl (Int64.of_int c)) in
          let t =
            Pir.Builder.ibin b Pir.Instr.Add
              (Pir.Builder.ibin b Pir.Instr.Add
                 (Pir.Builder.ibin b Pir.Instr.Mul (w blue) (k 28))
                 (Pir.Builder.ibin b Pir.Instr.Mul (w green) (k 151)))
              (Pir.Builder.ibin b Pir.Instr.Add
                 (Pir.Builder.ibin b Pir.Instr.Mul (w red) (k 77))
                 (k 128))
          in
          let g = Pir.Builder.ibin b Pir.Instr.LShr t (k 8) in
          [ Pir.Builder.cast b Pir.Instr.Trunc g (Pir.Types.Vec (Pir.Types.I8, vl)) ]
      | _ -> assert false)
    ~sop:(fun b chs ->
      match chs with
      | [ blue; green; red ] ->
          let w v = Pir.Builder.cast b Pir.Instr.ZExt v Pir.Types.i16 in
          let k c = Pir.Instr.cint Pir.Types.I16 (Int64.of_int c) in
          let t =
            Pir.Builder.ibin b Pir.Instr.Add
              (Pir.Builder.ibin b Pir.Instr.Add
                 (Pir.Builder.ibin b Pir.Instr.Mul (w blue) (k 28))
                 (Pir.Builder.ibin b Pir.Instr.Mul (w green) (k 151)))
              (Pir.Builder.ibin b Pir.Instr.Add
                 (Pir.Builder.ibin b Pir.Instr.Mul (w red) (k 77))
                 (k 128))
          in
          let g = Pir.Builder.ibin b Pir.Instr.LShr t (k 8) in
          [ Pir.Builder.cast b Pir.Instr.Trunc g Pir.Types.i8 ]
      | _ -> assert false)

let bgra_to_bgr =
  convert_kernel ~name:"bgra_to_bgr" ~family:"BgraToBgr" ~gang:32
    ~serial_src:
      {|
void bgra_to_bgr(uint8* restrict src, uint8* restrict dst, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    dst[3 * i] = src[4 * i];
    dst[3 * i + 1] = src[4 * i + 1];
    dst[3 * i + 2] = src[4 * i + 2];
  }
}
|}
    ~psim_src:
      {|
void bgra_to_bgr(uint8* src, uint8* dst, int64 n) {
  psim gang_size(64) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    dst[3 * i] = src[4 * i];
    dst[3 * i + 1] = src[4 * i + 1];
    dst[3 * i + 2] = src[4 * i + 2];
  }
}
|}
    ~k_in:4 ~k_out:3 ~in_len:(4 * pixels) ~out_len:(3 * pixels) ~vl:64
    ~vop:(fun _ chs ->
      match chs with [ b'; g; r; _a ] -> [ b'; g; r ] | _ -> assert false)
    ~sop:(fun _ chs ->
      match chs with [ b'; g; r; _a ] -> [ b'; g; r ] | _ -> assert false)

let bgr_to_bgra =
  convert_kernel ~name:"bgr_to_bgra" ~family:"BgrToBgra" ~gang:32
    ~serial_src:
      {|
void bgr_to_bgra(uint8* restrict src, uint8* restrict dst, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    dst[4 * i] = src[3 * i];
    dst[4 * i + 1] = src[3 * i + 1];
    dst[4 * i + 2] = src[3 * i + 2];
    dst[4 * i + 3] = 255;
  }
}
|}
    ~psim_src:
      {|
void bgr_to_bgra(uint8* src, uint8* dst, int64 n) {
  psim gang_size(64) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    dst[4 * i] = src[3 * i];
    dst[4 * i + 1] = src[3 * i + 1];
    dst[4 * i + 2] = src[3 * i + 2];
    dst[4 * i + 3] = 255;
  }
}
|}
    ~k_in:3 ~k_out:4 ~in_len:(3 * pixels) ~out_len:(4 * pixels) ~vl:64
    ~vop:(fun b chs ->
      match chs with
      | [ b'; g; r ] ->
          let alpha =
            Pir.Instr.cvec Pir.Types.I8
              (Array.make (Pir.Types.lanes (Pir.Builder.ty_of b b')) 255L)
          in
          [ b'; g; r; alpha ]
      | _ -> assert false)
    ~sop:(fun _ chs ->
      match chs with
      | [ b'; g; r ] -> [ b'; g; r; Pir.Instr.cint Pir.Types.I8 255L ]
      | _ -> assert false)

let deinterleave_uv =
  let serial_src =
    {|
void deinterleave_uv(uint8* restrict uv, uint8* restrict u, uint8* restrict v, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    u[i] = uv[2 * i];
    v[i] = uv[2 * i + 1];
  }
}
|}
  in
  let psim_src =
    {|
void deinterleave_uv(uint8* uv, uint8* u, uint8* v, int64 n) {
  psim gang_size(64) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    u[i] = uv[2 * i];
    v[i] = uv[2 * i + 1];
  }
}
|}
  in
  let hand m =
    let open Pir in
    Hw.define m "deinterleave_uv" ~ptrs:[ Types.I8; Types.I8; Types.I8 ]
      ~scalars:[]
      ~emit:(fun b ~ptrs ~scalars:_ ~n ->
        let uv, u, v = match ptrs with [ a; u; v ] -> (a, u, v) | _ -> assert false in
        let vl = 64 in
        Hw.strip_mined_loop b ~n ~vl
          ~vec_body:(fun b i ->
            match Hw.deinterleave_load b ~vl ~k:2 uv i with
            | [ cu; cv ] ->
                Builder.vstore b cu (Builder.gep b u i);
                Builder.vstore b cv (Builder.gep b v i)
            | _ -> assert false)
          ~scalar_body:(fun b j ->
            let j2 = Builder.mul b j (Instr.ci64 2) in
            Builder.store b (Builder.load b (Builder.gep b uv j2)) (Builder.gep b u j);
            Builder.store b
              (Builder.load b (Builder.gep b uv (Builder.add b j2 (Instr.ci64 1))))
              (Builder.gep b v j)))
  in
  {
    kname = "deinterleave_uv";
    family = "DeinterleaveUv";
    gang = 64;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers = [ u8buf "uv" 105 (2 * pixels); u8out "u" pixels; u8out "v" pixels ];
    scalars = [ vi pixels ];
    float_tolerance = 0.0;
  }

let interleave_uv =
  let serial_src =
    {|
void interleave_uv(uint8* restrict u, uint8* restrict v, uint8* restrict uv, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    uv[2 * i] = u[i];
    uv[2 * i + 1] = v[i];
  }
}
|}
  in
  let psim_src =
    {|
void interleave_uv(uint8* u, uint8* v, uint8* uv, int64 n) {
  psim gang_size(64) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    uv[2 * i] = u[i];
    uv[2 * i + 1] = v[i];
  }
}
|}
  in
  let hand m =
    let open Pir in
    Hw.define m "interleave_uv" ~ptrs:[ Types.I8; Types.I8; Types.I8 ]
      ~scalars:[]
      ~emit:(fun b ~ptrs ~scalars:_ ~n ->
        let u, v, uv = match ptrs with [ u; v; a ] -> (u, v, a) | _ -> assert false in
        let vl = 64 in
        Hw.strip_mined_loop b ~n ~vl
          ~vec_body:(fun b i ->
            let cu = Builder.vload b (Builder.gep b u i) vl in
            let cv = Builder.vload b (Builder.gep b v i) vl in
            Hw.interleave_store b ~vl ~k:2 uv i [ cu; cv ])
          ~scalar_body:(fun b j ->
            let j2 = Builder.mul b j (Instr.ci64 2) in
            Builder.store b (Builder.load b (Builder.gep b u j)) (Builder.gep b uv j2);
            Builder.store b (Builder.load b (Builder.gep b v j))
              (Builder.gep b uv (Builder.add b j2 (Instr.ci64 1)))))
  in
  {
    kname = "interleave_uv";
    family = "InterleaveUv";
    gang = 64;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers = [ in_u8 "u" 106; in_u8 "v" 107; u8out "uv" (2 * pixels) ];
    scalars = [ vi pixels ];
    float_tolerance = 0.0;
  }

(* -- byte reordering at wider element widths -- *)

let reorder_16bit =
  let serial_src =
    {|
void reorder_16bit(uint16* restrict src, uint16* restrict dst, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    uint16 x = src[i];
    dst[i] = (x >> 8) | (x << 8);
  }
}
|}
  in
  let psim_src =
    {|
void reorder_16bit(uint16* src, uint16* dst, int64 n) {
  psim gang_size(32) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    uint16 x = src[i];
    dst[i] = (x >> 8) | (x << 8);
  }
}
|}
  in
  let hand m =
    Hw.map m "reorder_16bit" ~elem:Pir.Types.I16 ~inputs:1
      ~vop:(fun b vs ->
        let x = List.hd vs in
        let vl = Pir.Types.lanes (Pir.Builder.ty_of b x) in
        let c8 = Pir.Instr.cvec Pir.Types.I16 (Array.make vl 8L) in
        Pir.Builder.or_ b
          (Pir.Builder.lshr b x c8)
          (Pir.Builder.shl b x c8))
      ~sop:(fun b vs ->
        let x = List.hd vs in
        let c8 = Pir.Instr.cint Pir.Types.I16 8L in
        Pir.Builder.or_ b (Pir.Builder.lshr b x c8) (Pir.Builder.shl b x c8))
  in
  {
    kname = "reorder_16bit";
    family = "Reorder";
    gang = 32;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers = [ u16buf "src" 108 pixels; u16out "dst" pixels ];
    scalars = [ vi pixels ];
    float_tolerance = 0.0;
  }

let reorder_32bit =
  let body_c =
    "uint32 x = src[i];\n\
    \    dst[i] = ((x & 255) << 24) | (((x >> 8) & 255) << 16) | (((x >> 16) & 255) << 8) | (x >> 24);"
  in
  let serial_src =
    Fmt.str
      {|
void reorder_32bit(uint32* restrict src, uint32* restrict dst, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    %s
  }
}
|}
      body_c
  in
  let psim_src =
    Fmt.str
      {|
void reorder_32bit(uint32* src, uint32* dst, int64 n) {
  psim gang_size(16) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    %s
  }
}
|}
      body_c
  in
  let hand m =
    Hw.map m "reorder_32bit" ~elem:Pir.Types.I32 ~inputs:1
      ~vop:(fun b vs ->
        let x = List.hd vs in
        let vl = Pir.Types.lanes (Pir.Builder.ty_of b x) in
        let k v = Pir.Instr.cvec Pir.Types.I32 (Array.make vl v) in
        let ( &* ) a c = Pir.Builder.and_ b a (k c) in
        let ( <<* ) a c = Pir.Builder.shl b a (k c) in
        let ( >>* ) a c = Pir.Builder.lshr b a (k c) in
        let p1 = (x &* 255L) <<* 24L in
        let p2 = ((x >>* 8L) &* 255L) <<* 16L in
        let p3 = ((x >>* 16L) &* 255L) <<* 8L in
        let p4 = x >>* 24L in
        Pir.Builder.or_ b (Pir.Builder.or_ b p1 p2) (Pir.Builder.or_ b p3 p4))
      ~sop:(fun b vs ->
        let x = List.hd vs in
        let k v = Pir.Instr.cint Pir.Types.I32 v in
        let ( &* ) a c = Pir.Builder.and_ b a (k c) in
        let ( <<* ) a c = Pir.Builder.shl b a (k c) in
        let ( >>* ) a c = Pir.Builder.lshr b a (k c) in
        let p1 = (x &* 255L) <<* 24L in
        let p2 = ((x >>* 8L) &* 255L) <<* 16L in
        let p3 = ((x >>* 16L) &* 255L) <<* 8L in
        let p4 = x >>* 24L in
        Pir.Builder.or_ b (Pir.Builder.or_ b p1 p2) (Pir.Builder.or_ b p3 p4))
  in
  {
    kname = "reorder_32bit";
    family = "Reorder";
    gang = 16;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers = [ u32buf "src" 109 pixels; u32out "dst" pixels ];
    scalars = [ vi pixels ];
    float_tolerance = 0.0;
  }

let int16_to_gray =
  let serial_src =
    {|
void int16_to_gray(int16* restrict src, uint8* restrict dst, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    int32 v = (int32)src[i];
    dst[i] = (uint8)(v < 0 ? 0 : (v > 255 ? 255 : v));
  }
}
|}
  in
  let psim_src =
    {|
void int16_to_gray(int16* src, uint8* dst, int64 n) {
  psim gang_size(32) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    int16 v = src[i];
    int16 lo = v < 0 ? (int16)0 : v;
    dst[i] = (uint8)(lo > 255 ? (int16)255 : lo);
  }
}
|}
  in
  let hand m =
    let open Pir in
    Hw.define m "int16_to_gray" ~ptrs:[ Types.I16; Types.I8 ] ~scalars:[]
      ~emit:(fun b ~ptrs ~scalars:_ ~n ->
        let src, dst = match ptrs with [ s; d ] -> (s, d) | _ -> assert false in
        let vl = 32 in
        Hw.strip_mined_loop b ~n ~vl
          ~vec_body:(fun b i ->
            let v = Builder.vload b (Builder.gep b src i) vl in
            let z = Instr.cvec Types.I16 (Array.make vl 0L) in
            let hi = Instr.cvec Types.I16 (Array.make vl 255L) in
            let cl = Builder.ibin b Instr.SMin (Builder.ibin b Instr.SMax v z) hi in
            Builder.vstore b
              (Builder.cast b Instr.Trunc cl (Types.Vec (Types.I8, vl)))
              (Builder.gep b dst i))
          ~scalar_body:(fun b j ->
            let v = Builder.load b (Builder.gep b src j) in
            let cl =
              Builder.ibin b Instr.SMin
                (Builder.ibin b Instr.SMax v (Instr.cint Types.I16 0L))
                (Instr.cint Types.I16 255L)
            in
            Builder.store b (Builder.cast b Instr.Trunc cl Types.i8)
              (Builder.gep b dst j)))
  in
  {
    kname = "int16_to_gray";
    family = "Int16ToGray";
    gang = 32;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers = [ i16src "src" 110 pixels; u8out "dst" pixels ];
    scalars = [ vi pixels ];
    float_tolerance = 0.0;
  }

(* -- BGRA -> YUV444 (BT.601 integer approximation) -- *)

let bgra_to_yuv444 =
  let formulas_serial =
    {|
    int32 blue = (int32)bgra[4 * i];
    int32 green = (int32)bgra[4 * i + 1];
    int32 red = (int32)bgra[4 * i + 2];
    y[i] = (uint8)(((66 * red + 129 * green + 25 * blue + 128) >> 8) + 16);
    int32 uv1 = ((112 * blue - 38 * red - 74 * green + 128) >> 8) + 128;
    int32 vv1 = ((112 * red - 94 * green - 18 * blue + 128) >> 8) + 128;
    u[i] = (uint8)(uv1 < 0 ? 0 : (uv1 > 255 ? 255 : uv1));
    v[i] = (uint8)(vv1 < 0 ? 0 : (vv1 > 255 ? 255 : vv1));|}
  in
  let serial_src =
    Fmt.str
      {|
void bgra_to_yuv444(uint8* restrict bgra, uint8* restrict y, uint8* restrict u, uint8* restrict v, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
%s
  }
}
|}
      formulas_serial
  in
  let psim_src =
    Fmt.str
      {|
void bgra_to_yuv444(uint8* bgra, uint8* y, uint8* u, uint8* v, int64 n) {
  psim gang_size(16) num_spmd_threads(n) {
    int64 i = psim_thread_num();
%s
  }
}
|}
      formulas_serial
  in
  let hand m =
    let open Pir in
    Hw.define m "bgra_to_yuv444" ~ptrs:[ Types.I8; Types.I8; Types.I8; Types.I8 ]
      ~scalars:[]
      ~emit:(fun b ~ptrs ~scalars:_ ~n ->
        let bgra, y, u, v =
          match ptrs with [ a; y; u; v ] -> (a, y, u, v) | _ -> assert false
        in
        let vl = 16 in
        let wide x = Builder.cast b Instr.ZExt x (Types.Vec (Types.I32, vl)) in
        let k c = Instr.cvec Types.I32 (Array.make vl (Int64.of_int c)) in
        let narrow x = Builder.cast b Instr.Trunc x (Types.Vec (Types.I8, vl)) in
        Hw.strip_mined_loop b ~n ~vl
          ~vec_body:(fun b i ->
            match Hw.deinterleave_load b ~vl ~k:4 bgra i with
            | [ blue8; green8; red8; _ ] ->
                let blue = wide blue8 and green = wide green8 and red = wide red8 in
                let mul a c = Builder.ibin b Instr.Mul a (k c) in
                let add a c = Builder.ibin b Instr.Add a c in
                let yv =
                  add
                    (Builder.ibin b Instr.AShr
                       (add (add (mul red 66) (mul green 129)) (add (mul blue 25) (k 128)))
                       (k 8))
                    (k 16)
                in
                Builder.vstore b (narrow yv) (Builder.gep b y i);
                let clamp x =
                  Builder.ibin b Instr.SMin (Builder.ibin b Instr.SMax x (k 0)) (k 255)
                in
                let sub a c = Builder.ibin b Instr.Sub a c in
                let uv =
                  add
                    (Builder.ibin b Instr.AShr
                       (add (sub (sub (mul blue 112) (mul red 38)) (mul green 74)) (k 128))
                       (k 8))
                    (k 128)
                in
                let vv =
                  add
                    (Builder.ibin b Instr.AShr
                       (add (sub (sub (mul red 112) (mul green 94)) (mul blue 18)) (k 128))
                       (k 8))
                    (k 128)
                in
                Builder.vstore b (narrow (clamp uv)) (Builder.gep b u i);
                Builder.vstore b (narrow (clamp vv)) (Builder.gep b v i)
            | _ -> assert false)
          ~scalar_body:(fun b j ->
            let j4 = Builder.mul b j (Instr.ci64 4) in
            let ld c =
              Builder.cast b Instr.ZExt
                (Builder.load b (Builder.gep b bgra (Builder.add b j4 (Instr.ci64 c))))
                Types.i32
            in
            let blue = ld 0 and green = ld 1 and red = ld 2 in
            let k c = Instr.ci32 c in
            let mul a c = Builder.ibin b Instr.Mul a (k c) in
            let add a c = Builder.ibin b Instr.Add a c in
            let sub a c = Builder.ibin b Instr.Sub a c in
            let yv =
              add
                (Builder.ibin b Instr.AShr
                   (add (add (mul red 66) (mul green 129)) (add (mul blue 25) (k 128)))
                   (k 8))
                (k 16)
            in
            Builder.store b (Builder.cast b Instr.Trunc yv Types.i8) (Builder.gep b y j);
            let clamp x =
              Builder.ibin b Instr.SMin (Builder.ibin b Instr.SMax x (k 0)) (k 255)
            in
            let uv =
              add
                (Builder.ibin b Instr.AShr
                   (add (sub (sub (mul blue 112) (mul red 38)) (mul green 74)) (k 128))
                   (k 8))
                (k 128)
            in
            let vv =
              add
                (Builder.ibin b Instr.AShr
                   (add (sub (sub (mul red 112) (mul green 94)) (mul blue 18)) (k 128))
                   (k 8))
                (k 128)
            in
            Builder.store b
              (Builder.cast b Instr.Trunc (clamp uv) Types.i8)
              (Builder.gep b u j);
            Builder.store b
              (Builder.cast b Instr.Trunc (clamp vv) Types.i8)
              (Builder.gep b v j)))
  in
  {
    kname = "bgra_to_yuv444";
    family = "BgraToYuv";
    gang = 16;
    psim_src;
    serial_src;
    hand = Some hand;
    buffers =
      [ u8buf "bgra" 111 (4 * pixels); u8out "y" pixels; u8out "u" pixels; u8out "v" pixels ];
    scalars = [ vi pixels ];
    float_tolerance = 0.0;
  }

let kernels =
  [
    bgra_to_gray;
    bgr_to_gray;
    gray_to_bgra;
    bgra_to_bgr;
    bgr_to_bgra;
    deinterleave_uv;
    interleave_uv;
    reorder_16bit;
    reorder_32bit;
    int16_to_gray;
    bgra_to_yuv444;
  ]
