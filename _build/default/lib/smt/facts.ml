(** Known facts about scalar IR values, used as the precondition
    vocabulary of the conditional shape-transformation rules (paper
    §4.2.2: "known facts about IR values are tracked as z3 model
    constraints and a particular shape transform is applied only after
    verifying that its preconditions are satisfied").

    Our stand-in for z3 keeps three kinds of facts per value, each a
    sound over-approximation:

    - [const]: the value is this compile-time constant;
    - [align]: the value is a multiple of [2^align] (known low zero bits);
    - [range]: unsigned interval the canonical value lies in.

    Facts attach to the *base* of an indexed shape — the scalar value
    that the transformed function will hold in a scalar register. *)

type t = {
  const : int64 option;
  align : int;  (** value is a multiple of [2^align]; 64 means "is zero" *)
  range : (int64 * int64) option;  (** inclusive unsigned bounds *)
}

let top = { const = None; align = 0; range = None }

let ctz64 v = if v = 0L then 64 else Int64.to_int (Pir.Ints.ctz 64 v)

(** Most precise facts for a known constant at width [w]. *)
let of_const w v =
  let v = Pir.Ints.norm w v in
  { const = Some v; align = ctz64 v; range = Some (v, v) }

let is_const t v = t.const = Some v
let align_at_least t k = t.align >= k

(** Unsigned upper bound if one is known. *)
let hi t = Option.map snd t.range

(** [fits_unsigned t w]: is the value provably below [2^w]? *)
let fits_unsigned t w =
  w >= 64
  ||
  match hi t with
  | Some h -> Int64.unsigned_compare h (Pir.Ints.max_unsigned w) <= 0
  | None -> false

(** [max_plus_fits t extra w]: is [value + extra] provably below [2^w]
    (no unsigned wrap at width [w])? *)
let max_plus_fits t extra w =
  match hi t with
  | Some h ->
      let lim = if w >= 64 then Int64.minus_one else Pir.Ints.max_unsigned w in
      Int64.unsigned_compare h (Int64.sub lim extra) <= 0
      && Int64.unsigned_compare extra lim <= 0
  | None -> false

(** Join of facts along control-flow merges (both may hold). *)
let join a b =
  {
    const = (if a.const = b.const then a.const else None);
    align = min a.align b.align;
    range =
      (match (a.range, b.range) with
      | Some (l1, h1), Some (l2, h2) ->
          Some
            ( (if Int64.unsigned_compare l1 l2 <= 0 then l1 else l2),
              if Int64.unsigned_compare h1 h2 >= 0 then h1 else h2 )
      | _ -> None);
  }

let equal a b = a.const = b.const && a.align = b.align && a.range = b.range

(** Discard ranges (widening escape hatch for slow fixpoints). *)
let widen t = { t with range = None }

(* -- abstract transfer functions -- *)

let clamp_align w a = max 0 (min a (max 0 w))

let range_add w a b =
  match (a.range, b.range) with
  | Some (l1, h1), Some (l2, h2)
    when max_plus_fits { a with range = Some (l1, h1) } h2 w ->
      Some (Int64.add l1 l2, Int64.add h1 h2)
  | _ -> None

(** Facts of [ibin k a b] at width [w], given facts of the operands. *)
let ibin (k : Pir.Instr.ibin) w a b : t =
  match (a.const, b.const) with
  | Some x, Some y -> of_const w (Pir.Fold.ibin k w x y)
  | _ -> (
      match k with
      | Pir.Instr.Add ->
          {
            const = None;
            align = clamp_align w (min a.align b.align);
            range = range_add w a b;
          }
      | Pir.Instr.Sub -> { const = None; align = clamp_align w (min a.align b.align); range = None }
      | Pir.Instr.Mul ->
          { const = None; align = clamp_align w (a.align + b.align); range = None }
      | Pir.Instr.Shl -> (
          match b.const with
          | Some s when Int64.unsigned_compare s (Int64.of_int w) < 0 ->
              { const = None; align = clamp_align w (a.align + Int64.to_int s); range = None }
          | _ -> top)
      | Pir.Instr.LShr -> (
          match b.const with
          | Some s when Int64.unsigned_compare s (Int64.of_int w) < 0 ->
              let s = Int64.to_int s in
              {
                const = None;
                align = clamp_align w (a.align - s);
                range =
                  Option.map
                    (fun (l, h) ->
                      (Pir.Ints.lshr w l (Int64.of_int s), Pir.Ints.lshr w h (Int64.of_int s)))
                    a.range;
              }
          | _ -> top)
      | Pir.Instr.And -> (
          let align =
            clamp_align w
              (max a.align (match b.const with Some c -> ctz64 c | None -> 0))
          in
          match b.const with
          | Some c -> { const = None; align; range = Some (0L, Pir.Ints.norm w c) }
          | None -> { const = None; align; range = None })
      | Pir.Instr.Or | Pir.Instr.Xor ->
          { const = None; align = clamp_align w (min a.align b.align); range = None }
      | Pir.Instr.URem -> (
          match b.const with
          | Some c when c <> 0L -> { const = None; align = 0; range = Some (0L, Int64.sub c 1L) }
          | _ -> top)
      | Pir.Instr.UDiv -> (
          match b.const with
          | Some c when c <> 0L ->
              {
                const = None;
                align = 0;
                range = Option.map (fun (l, h) -> (Pir.Ints.udiv w l c, Pir.Ints.udiv w h c)) a.range;
              }
          | _ -> top)
      | Pir.Instr.UMin ->
          {
            const = None;
            align = min a.align b.align;
            range =
              (match (a.range, b.range) with
              | Some (_, h1), Some (_, h2) ->
                  Some (0L, if Int64.unsigned_compare h1 h2 <= 0 then h1 else h2)
              | Some (_, h), None | None, Some (_, h) -> Some (0L, h)
              | None, None -> None);
          }
      | _ -> top)

(** Facts through a cast to width [wd] from width [ws]. *)
let cast (k : Pir.Instr.cast_kind) ~ws ~wd a : t =
  match k with
  | Pir.Instr.ZExt -> a (* canonical form is already zero-extended *)
  | Pir.Instr.Trunc ->
      if fits_unsigned a wd then a
      else { const = None; align = min a.align wd; range = None }
  | Pir.Instr.SExt ->
      (* safe only when the value is provably non-negative at ws *)
      if fits_unsigned a (ws - 1) then a else top
  | _ -> top
