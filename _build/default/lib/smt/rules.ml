(** Conditional shape-transformation rules (paper §4.2.2).

    A rule answers: given an integer operation [op a b] where each
    operand is an *indexed* value — a scalar base (about which [Facts]
    are known) plus compile-time per-lane offsets — can the result also
    be treated as indexed, with the transformed function applying the
    same operation to the bases?

    Formally, a rule is sound iff for every lane [i]:

      [op (base_a + offA.(i)) (base_b + offB.(i))
         = op (base_a, base_b) + offR.(i)]   (mod 2^w)

    whenever the operand facts hold.  [Verify] model-checks exactly this
    identity for every rule (the "offline phase" of the paper's
    two-phase validation); at compile time shape analysis only evaluates
    the cheap [apply] preconditions (the "online phase").

    Uniform values are indexed values with all-zero offsets, so the rules
    subsume uniform/uniform and uniform/strided combinations. *)

type arg = {
  offsets : int64 array;  (** per-lane compile-time offsets *)
  facts : Facts.t;  (** facts about the scalar base *)
}

type rule = {
  name : string;
  op : Pir.Instr.ibin;
  apply : w:int -> arg -> arg -> int64 array option;
      (** [Some offsets] when the preconditions hold; offsets are
          canonical at width [w] *)
}

let all_zero o = Array.for_all (fun x -> x = 0L) o
let all_in_pow2 w o k = Array.for_all (fun x -> Pir.Ints.ucompare w x (Pir.Ints.shl w 1L (Int64.of_int k)) < 0) o
let all_aligned o k = Array.for_all (fun x -> Facts.ctz64 x >= k) o

let map2 w f a b = Array.init (Array.length a) (fun i -> Pir.Ints.norm w (f a.(i) b.(i)))
let map_ w f a = Array.map (fun x -> Pir.Ints.norm w (f x)) a

let max_offset w o =
  Array.fold_left (fun acc x -> if Pir.Ints.ucompare w acc x >= 0 then acc else x) 0L o

let pow2_exponent w c =
  (* c = 2^k for some 0 <= k < w? *)
  let k = Facts.ctz64 c in
  if k < w && Pir.Ints.norm w c = Pir.Ints.shl w 1L (Int64.of_int k) then Some k
  else None

let low_mask_exponent w c =
  (* c = 2^k - 1? *)
  let c1 = Pir.Ints.add w c 1L in
  pow2_exponent w c1

let high_mask_exponent w c =
  (* c = ~(2^k - 1) at width w, i.e. -2^k: the paper's "uniform negative
     power of two" *)
  let notc = Pir.Ints.lognot w c in
  low_mask_exponent w notc |> Option.map (fun k -> k)

let const_of (b : arg) = if all_zero b.offsets then b.facts.Facts.const else None

let rules : rule list =
  [
    {
      name = "add.indexed";
      op = Pir.Instr.Add;
      (* (ba + oa) + (bb + ob) = (ba + bb) + (oa + ob) : unconditional *)
      apply = (fun ~w a b -> Some (map2 w Int64.add a.offsets b.offsets));
    };
    {
      name = "sub.indexed";
      op = Pir.Instr.Sub;
      apply = (fun ~w a b -> Some (map2 w Int64.sub a.offsets b.offsets));
    };
    {
      name = "mul.const";
      op = Pir.Instr.Mul;
      (* (ba + oa) * cb = ba*cb + oa*cb when cb is a uniform constant *)
      apply =
        (fun ~w a b ->
          match const_of b with
          | Some c -> Some (map_ w (fun o -> Int64.mul o c) a.offsets)
          | None -> None);
    };
    {
      name = "mul.const.lhs";
      op = Pir.Instr.Mul;
      apply =
        (fun ~w a b ->
          match const_of a with
          | Some c -> Some (map_ w (fun o -> Int64.mul o c) b.offsets)
          | None -> None);
    };
    {
      name = "mul.both_const_bases";
      op = Pir.Instr.Mul;
      (* the paper's example: indexed x indexed is interpretable only when
         both bases are compile-time constants *)
      apply =
        (fun ~w a b ->
          match (a.facts.Facts.const, b.facts.Facts.const) with
          | Some ca, Some cb ->
              Some
                (map2 w
                   (fun oa ob ->
                     Int64.add
                       (Int64.add (Int64.mul oa cb) (Int64.mul ob ca))
                       (Int64.mul oa ob))
                   a.offsets b.offsets)
          | _ -> None);
    };
    {
      name = "shl.const";
      op = Pir.Instr.Shl;
      (* (ba + oa) << c = (ba << c) + (oa << c) : c uniform const < w *)
      apply =
        (fun ~w a b ->
          match const_of b with
          | Some c when Int64.unsigned_compare c (Int64.of_int w) < 0 ->
              Some (map_ w (fun o -> Pir.Ints.shl w o c) a.offsets)
          | _ -> None);
    };
    {
      name = "and.high_mask";
      op = Pir.Instr.And;
      (* (ba + oa) & ~(2^k - 1) = (ba & ~(2^k -1)) + 0  when ba is a
         multiple of 2^k and 0 <= oa < 2^k — the paper's logical-AND
         example (§4.2.2) *)
      apply =
        (fun ~w a b ->
          match const_of b with
          | Some c -> (
              match high_mask_exponent w c with
              | Some k
                when Facts.align_at_least a.facts k && all_in_pow2 w a.offsets k ->
                  Some (Array.map (fun _ -> 0L) a.offsets)
              | _ -> None)
          | None -> None);
    };
    {
      name = "and.low_mask";
      op = Pir.Instr.And;
      (* (ba + oa) & (2^k - 1) = (ba & (2^k - 1)) + oa  when ba is a
         multiple of 2^k and 0 <= oa < 2^k (the base term is zero) *)
      apply =
        (fun ~w a b ->
          match const_of b with
          | Some c -> (
              match low_mask_exponent w c with
              | Some k
                when Facts.align_at_least a.facts k && all_in_pow2 w a.offsets k ->
                  Some a.offsets
              | _ -> None)
          | None -> None);
    };
    {
      name = "or.disjoint";
      op = Pir.Instr.Or;
      (* (ba + oa) | c = (ba | c) + oa  when c < 2^k, ba multiple of 2^k,
         and every oa is a multiple of 2^k: the OR cannot carry *)
      apply =
        (fun ~w a b ->
          match const_of b with
          | Some c ->
              let k = (* smallest k with c < 2^k *)
                let rec go k = if Pir.Ints.ucompare w c (Pir.Ints.shl w 1L (Int64.of_int k)) < 0 || k >= w then k else go (k + 1) in
                go 0
              in
              if Facts.align_at_least a.facts k && all_aligned a.offsets k && k < w
              then Some a.offsets
              else None
          | None -> None);
    };
    {
      name = "xor.disjoint";
      op = Pir.Instr.Xor;
      apply =
        (fun ~w a b ->
          match const_of b with
          | Some c ->
              let k =
                let rec go k = if Pir.Ints.ucompare w c (Pir.Ints.shl w 1L (Int64.of_int k)) < 0 || k >= w then k else go (k + 1) in
                go 0
              in
              if Facts.align_at_least a.facts k && all_aligned a.offsets k && k < w
              then Some a.offsets
              else None
          | None -> None);
    };
    {
      name = "lshr.aligned";
      op = Pir.Instr.LShr;
      (* (ba + oa) >> k = (ba >> k) + (oa >> k) when ba and all oa are
         multiples of 2^k and ba + oa cannot wrap (caught by the offline
         model check: 0xF0 + 0x10 wraps to 0 at 8 bits) *)
      apply =
        (fun ~w a b ->
          match const_of b with
          | Some s when Int64.unsigned_compare s (Int64.of_int w) < 0 ->
              let k = Int64.to_int s in
              let max_off = max_offset w a.offsets in
              if
                Facts.align_at_least a.facts k
                && all_aligned a.offsets k
                && Facts.max_plus_fits a.facts max_off w
              then Some (map_ w (fun o -> Pir.Ints.lshr w o s) a.offsets)
              else None
          | _ -> None);
    };
    {
      name = "udiv.pow2";
      op = Pir.Instr.UDiv;
      apply =
        (fun ~w a b ->
          match const_of b with
          | Some c -> (
              match pow2_exponent w c with
              | Some k
                when Facts.align_at_least a.facts k
                     && all_aligned a.offsets k
                     && Facts.max_plus_fits a.facts (max_offset w a.offsets) w ->
                  Some (map_ w (fun o -> Pir.Ints.lshr w o (Int64.of_int k)) a.offsets)
              | _ -> None)
          | None -> None);
    };
    {
      name = "urem.pow2";
      op = Pir.Instr.URem;
      (* (ba + oa) % 2^k = (ba % 2^k) + oa when ba is a multiple of 2^k
         and 0 <= oa < 2^k *)
      apply =
        (fun ~w a b ->
          match const_of b with
          | Some c -> (
              match pow2_exponent w c with
              | Some k
                when Facts.align_at_least a.facts k && all_in_pow2 w a.offsets k ->
                  Some a.offsets
              | _ -> None)
          | None -> None);
    };
    {
      name = "umin.same_offsets";
      op = Pir.Instr.UMin;
      (* umin(ba + o, bb + o) = umin(ba, bb) + o when offsets are equal
         and neither addition wraps *)
      apply =
        (fun ~w a b ->
          let max_off =
            Array.fold_left
              (fun acc o -> if Pir.Ints.ucompare w acc o >= 0 then acc else o)
              0L a.offsets
          in
          if
            a.offsets = b.offsets
            && Facts.max_plus_fits a.facts max_off w
            && Facts.max_plus_fits b.facts max_off w
          then Some a.offsets
          else None);
    };
    {
      name = "umax.same_offsets";
      op = Pir.Instr.UMax;
      apply =
        (fun ~w a b ->
          let max_off =
            Array.fold_left
              (fun acc o -> if Pir.Ints.ucompare w acc o >= 0 then acc else o)
              0L a.offsets
          in
          if
            a.offsets = b.offsets
            && Facts.max_plus_fits a.facts max_off w
            && Facts.max_plus_fits b.facts max_off w
          then Some a.offsets
          else None);
    };
  ]

let for_op op = List.filter (fun r -> r.op = op) rules

(** First rule that fires for [op a b] at width [w]. *)
let try_apply ~w op a b =
  List.find_map
    (fun r -> Option.map (fun o -> (r.name, o)) (r.apply ~w a b))
    (for_op op)
