lib/smt/facts.ml: Int64 Option Pir
