lib/smt/verify.ml: Array Facts Fmt Fun Int64 List Pir Rules
