lib/smt/rules.ml: Array Facts Int64 List Option Pir
