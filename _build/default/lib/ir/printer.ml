(** Textual form of PIR, LLVM-flavoured.  Used by the [psimc] driver's
    [--emit-ir] modes and by tests. *)

open Instr

let pp_const ppf = function
  | Cint (Types.I1, v) -> Fmt.pf ppf "%s" (if v = 0L then "false" else "true")
  | Cint (s, v) -> Fmt.pf ppf "%Ld:%a" (Ints.sext (Types.scalar_bits s) v) Types.pp (Types.Scalar s)
  | Cfloat (s, v) -> Fmt.pf ppf "%h:%a" v Types.pp (Types.Scalar s)
  | Cvec (s, a) ->
      Fmt.pf ppf "<%a>:%a"
        Fmt.(array ~sep:(any ", ") (fun ppf v -> Fmt.pf ppf "%Ld" (Ints.sext (Types.scalar_bits s) v)))
        a Types.pp (Types.Scalar s)

let pp_operand ppf = function
  | Var v -> Fmt.pf ppf "%%%d" v
  | Const c -> pp_const ppf c

let pp_ibin ppf k =
  Fmt.string ppf
    (match k with
    | Add -> "add"
    | Sub -> "sub"
    | Mul -> "mul"
    | UDiv -> "udiv"
    | SDiv -> "sdiv"
    | URem -> "urem"
    | SRem -> "srem"
    | And -> "and"
    | Or -> "or"
    | Xor -> "xor"
    | Shl -> "shl"
    | LShr -> "lshr"
    | AShr -> "ashr"
    | SMin -> "smin"
    | SMax -> "smax"
    | UMin -> "umin"
    | UMax -> "umax"
    | UAddSat -> "uadd.sat"
    | SAddSat -> "sadd.sat"
    | USubSat -> "usub.sat"
    | SSubSat -> "ssub.sat"
    | AvgrU -> "avgr.u"
    | AbsDiffU -> "absdiff.u"
    | MulHiS -> "mulhi.s"
    | MulHiU -> "mulhi.u")

let pp_fbin ppf k =
  Fmt.string ppf
    (match k with
    | FAdd -> "fadd"
    | FSub -> "fsub"
    | FMul -> "fmul"
    | FDiv -> "fdiv"
    | FMin -> "fmin"
    | FMax -> "fmax")

let pp_iun ppf k =
  Fmt.string ppf
    (match k with
    | INot -> "not"
    | INeg -> "neg"
    | IAbs -> "abs"
    | Clz -> "clz"
    | Ctz -> "ctz"
    | Popcnt -> "popcnt")

let pp_fun ppf k =
  Fmt.string ppf
    (match k with
    | FNeg -> "fneg"
    | FAbs -> "fabs"
    | FSqrt -> "fsqrt"
    | FFloor -> "ffloor"
    | FCeil -> "fceil")

let pp_ipred ppf p =
  Fmt.string ppf
    (match p with
    | Eq -> "eq"
    | Ne -> "ne"
    | Ult -> "ult"
    | Ule -> "ule"
    | Ugt -> "ugt"
    | Uge -> "uge"
    | Slt -> "slt"
    | Sle -> "sle"
    | Sgt -> "sgt"
    | Sge -> "sge")

let pp_fpred ppf p =
  Fmt.string ppf
    (match p with
    | Oeq -> "oeq"
    | One -> "one"
    | Olt -> "olt"
    | Ole -> "ole"
    | Ogt -> "ogt"
    | Oge -> "oge")

let pp_cast ppf k =
  Fmt.string ppf
    (match k with
    | Trunc -> "trunc"
    | ZExt -> "zext"
    | SExt -> "sext"
    | FPTrunc -> "fptrunc"
    | FPExt -> "fpext"
    | FPToSI -> "fptosi"
    | FPToUI -> "fptoui"
    | SIToFP -> "sitofp"
    | UIToFP -> "uitofp"
    | Bitcast -> "bitcast")

let pp_reduce ppf k =
  Fmt.string ppf
    (match k with
    | RAdd -> "add"
    | RAnd -> "and"
    | ROr -> "or"
    | RXor -> "xor"
    | RSMin -> "smin"
    | RSMax -> "smax"
    | RUMin -> "umin"
    | RUMax -> "umax"
    | RFAdd -> "fadd"
    | RFMin -> "fmin"
    | RFMax -> "fmax"
    | RAny -> "any"
    | RAll -> "all")

let pp_mask ppf = function
  | None -> ()
  | Some m -> Fmt.pf ppf ", mask %a" pp_operand m

let pp_op ppf (op : op) =
  let p fmt = Fmt.pf ppf fmt in
  let o = pp_operand in
  match op with
  | Ibin (k, a, b) -> p "%a %a, %a" pp_ibin k o a o b
  | Fbin (k, a, b) -> p "%a %a, %a" pp_fbin k o a o b
  | Iun (k, a) -> p "%a %a" pp_iun k o a
  | Fun (k, a) -> p "%a %a" pp_fun k o a
  | Icmp (pr, a, b) -> p "icmp %a %a, %a" pp_ipred pr o a o b
  | Fcmp (pr, a, b) -> p "fcmp %a %a, %a" pp_fpred pr o a o b
  | Select (c, a, b) -> p "select %a, %a, %a" o c o a o b
  | Cast (k, a, t) -> p "%a %a to %a" pp_cast k o a Types.pp t
  | Alloca (s, n) -> p "alloca %a x %d" Types.pp (Types.Scalar s) n
  | Load a -> p "load %a" o a
  | Store (v, a) -> p "store %a, %a" o v o a
  | Gep (a, i) -> p "gep %a, %a" o a o i
  | Call (f, args) -> p "call @%s(%a)" f Fmt.(list ~sep:(any ", ") o) args
  | Phi inc ->
      p "phi %a"
        Fmt.(
          list ~sep:(any ", ") (fun ppf (l, v) -> Fmt.pf ppf "[%s: %a]" l o v))
        inc
  | Splat (a, n) -> p "splat %a x %d" o a n
  | VLoad (a, m) -> p "vload %a%a" o a pp_mask m
  | VStore (v, a, m) -> p "vstore %a, %a%a" o v o a pp_mask m
  | Gather (b, i, m) -> p "gather %a[%a]%a" o b o i pp_mask m
  | Scatter (v, b, i, m) -> p "scatter %a, %a[%a]%a" o v o b o i pp_mask m
  | Shuffle (a, b, idx) ->
      p "shuffle %a, %a, <%a>" o a o b
        Fmt.(array ~sep:(any ", ") int)
        idx
  | ShuffleDyn (a, i) -> p "shuffle.dyn %a, %a" o a o i
  | ExtractLane (v, i) -> p "extractlane %a, %a" o v o i
  | InsertLane (v, x, i) -> p "insertlane %a, %a, %a" o v o x o i
  | Reduce (k, v) -> p "reduce.%a %a" pp_reduce k o v
  | FirstLane m -> p "firstlane %a" o m
  | Psadbw (a, b) -> p "psadbw %a, %a" o a o b

let pp_instr ppf (i : instr) =
  if i.ty = Types.Void then Fmt.pf ppf "  %a" pp_op i.op
  else Fmt.pf ppf "  %%%d : %a = %a" i.id Types.pp i.ty pp_op i.op

let pp_term ppf = function
  | Br l -> Fmt.pf ppf "  br %%%s" l
  | CondBr (c, t, e) -> Fmt.pf ppf "  br %a, %%%s, %%%s" pp_operand c t e
  | Ret None -> Fmt.pf ppf "  ret"
  | Ret (Some v) -> Fmt.pf ppf "  ret %a" pp_operand v
  | Unreachable -> Fmt.pf ppf "  unreachable"

let pp_block ppf (b : Func.block) =
  Fmt.pf ppf "%s:@." b.bname;
  List.iter (fun i -> Fmt.pf ppf "%a@." pp_instr i) b.instrs;
  Fmt.pf ppf "%a@." pp_term b.term

let pp_spmd ppf = function
  | None -> ()
  | Some { Func.gang_size; partial } ->
      Fmt.pf ppf " spmd(gang_size=%d%s)" gang_size
        (if partial then ", partial" else "")

let pp_func ppf (f : Func.t) =
  Fmt.pf ppf "func @%s(%a) -> %a%a {@."
    f.fname
    Fmt.(
      list ~sep:(any ", ") (fun ppf (v, t) -> Fmt.pf ppf "%%%d: %a" v Types.pp t))
    f.params Types.pp f.ret pp_spmd f.spmd;
  List.iter (fun b -> pp_block ppf b) f.blocks;
  Fmt.pf ppf "}@."

let pp_module ppf (m : Func.modul) =
  Fmt.pf ppf "; module %s@.@." m.mname;
  List.iter (fun f -> Fmt.pf ppf "%a@." pp_func f) m.funcs

let func_to_string f = Fmt.str "%a" pp_func f
let module_to_string m = Fmt.str "%a" pp_module m
