(** Convenience layer for constructing PIR functions.

    A builder owns a current insertion block; every [ins]ert returns the
    operand naming the new value.  Result types are inferred from the
    operands where the operation determines them, and must be supplied
    explicitly otherwise (loads, casts, calls). *)

open Instr

type t = { func : Func.t; mutable cur : Func.block }

(** Create a builder for [func], creating and entering its entry block. *)
let create ?(entry = "entry") func =
  let b : Func.block = { bname = entry; instrs = []; term = Unreachable } in
  func.Func.blocks <- func.Func.blocks @ [ b ];
  { func; cur = b }

(** Append a fresh (empty, [Unreachable]-terminated) block. *)
let add_block t name =
  let b : Func.block = { bname = name; instrs = []; term = Unreachable } in
  t.func.Func.blocks <- t.func.Func.blocks @ [ b ];
  b

let position t b = t.cur <- b
let current t = t.cur

let mk_name =
  let counters : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
  fun prefix ->
    let r =
      match Hashtbl.find_opt counters prefix with
      | Some r -> r
      | None ->
          let r = ref 0 in
          Hashtbl.replace counters prefix r;
          r
    in
    incr r;
    Fmt.str "%s%d" prefix !r

(** Fresh uniquely-named block. *)
let fresh_block t prefix = add_block t (mk_name (prefix ^ "."))

let ty_of t o = Func.ty_of_operand t.func o

(** Insert an instruction with result type [ty]; returns its value. *)
let ins t ty op =
  let id = Func.fresh_id t.func in
  Func.set_ty t.func id ty;
  t.cur.instrs <- t.cur.instrs @ [ { id; ty; op } ];
  Var id

(** Insert a side-effect-only instruction (result [Void]). *)
let ins_unit t op = ignore (ins t Types.Void op)

(* -- terminators -- *)

let br t l = t.cur.term <- Br l
let condbr t c l1 l2 = t.cur.term <- CondBr (c, l1, l2)
let ret t r = t.cur.term <- Ret r
let ret_void t = t.cur.term <- Ret None

(* -- typed helpers -- *)

let ibin t k a b = ins t (ty_of t a) (Ibin (k, a, b))
let fbin t k a b = ins t (ty_of t a) (Fbin (k, a, b))
let iun t k a = ins t (ty_of t a) (Iun (k, a))
let fun_ t k a = ins t (ty_of t a) (Fun (k, a))
let add t a b = ibin t Add a b
let sub t a b = ibin t Sub a b
let mul t a b = ibin t Mul a b
let and_ t a b = ibin t And a b
let or_ t a b = ibin t Or a b
let xor t a b = ibin t Xor a b
let shl t a b = ibin t Shl a b
let lshr t a b = ibin t LShr a b
let ashr t a b = ibin t AShr a b
let fadd t a b = fbin t FAdd a b
let fsub t a b = fbin t FSub a b
let fmul t a b = fbin t FMul a b
let fdiv t a b = fbin t FDiv a b
let not_ t a = iun t INot a

let icmp t p a b =
  let ty =
    match ty_of t a with
    | Types.Vec (_, n) -> Types.Vec (Types.I1, n)
    | _ -> Types.bool_
  in
  ins t ty (Icmp (p, a, b))

let fcmp t p a b =
  let ty =
    match ty_of t a with
    | Types.Vec (_, n) -> Types.Vec (Types.I1, n)
    | _ -> Types.bool_
  in
  ins t ty (Fcmp (p, a, b))

let select t c a b = ins t (ty_of t a) (Select (c, a, b))
let cast t k a ty = ins t ty (Cast (k, a, ty))
let alloca t s n = ins t (Types.Ptr s) (Alloca (s, n))

let load t p =
  match ty_of t p with
  | Types.Ptr s -> ins t (Types.Scalar s) (Load p)
  | ty -> Fmt.invalid_arg "Builder.load: not a pointer (%a)" Types.pp ty

let store t v p = ins_unit t (Store (v, p))
let gep t p i = ins t (ty_of t p) (Gep (p, i))
let call t ty name args = ins t ty (Call (name, args))
let call_unit t name args = ins_unit t (Call (name, args))
let phi t ty incoming = ins t ty (Phi incoming)

(* -- vector helpers -- *)

let splat t a n = ins t (Types.widen (ty_of t a) n) (Splat (a, n))

let vload t ?mask p n =
  match ty_of t p with
  | Types.Ptr s -> ins t (Types.Vec (s, n)) (VLoad (p, mask))
  | ty -> Fmt.invalid_arg "Builder.vload: not a pointer (%a)" Types.pp ty

let vstore t ?mask v p = ins_unit t (VStore (v, p, mask))

let gather t ?mask base idx =
  match (ty_of t base, ty_of t idx) with
  | Types.Ptr s, Types.Vec (_, n) -> ins t (Types.Vec (s, n)) (Gather (base, idx, mask))
  | _ -> invalid_arg "Builder.gather: expected pointer base and vector index"

let scatter t ?mask v base idx = ins_unit t (Scatter (v, base, idx, mask))

let shuffle t a b idx =
  let s = Types.elem (ty_of t a) in
  ins t (Types.Vec (s, Array.length idx)) (Shuffle (a, b, idx))

let shuffle_dyn t a idx = ins t (ty_of t a) (ShuffleDyn (a, idx))
let extract t v i = ins t (Types.Scalar (Types.elem (ty_of t v))) (ExtractLane (v, i))
let insert t v x i = ins t (ty_of t v) (InsertLane (v, x, i))

let reduce t k v =
  let ty =
    match (k, ty_of t v) with
    | (RAny | RAll), _ -> Types.bool_
    | _, Types.Vec (s, _) -> Types.Scalar s
    | _, ty -> Fmt.invalid_arg "Builder.reduce: not a vector (%a)" Types.pp ty
  in
  ins t ty (Reduce (k, v))

let first_lane t m = ins t Types.i32 (FirstLane m)

let psadbw t a b =
  match ty_of t a with
  | Types.Vec (Types.I8, n) when n mod 8 = 0 ->
      ins t (Types.Vec (Types.I64, n / 8)) (Psadbw (a, b))
  | ty -> Fmt.invalid_arg "Builder.psadbw: expected <8k x i8> (%a)" Types.pp ty
