lib/ir/fold.pp.ml: Instr Ints
