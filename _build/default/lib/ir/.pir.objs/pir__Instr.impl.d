lib/ir/instr.pp.ml: Array Int64 Ints List Option Ppx_deriving_runtime Types
