lib/ir/builder.pp.ml: Array Fmt Func Hashtbl Instr Types
