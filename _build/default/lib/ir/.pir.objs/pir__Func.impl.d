lib/ir/func.pp.ml: Fmt Hashtbl Instr List Types
