lib/ir/ints.pp.ml: Int64
