lib/ir/verifier.pp.ml: Array Fmt Func Hashtbl Instr Intrinsics List Option Printer Types
