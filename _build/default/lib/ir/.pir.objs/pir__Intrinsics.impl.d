lib/ir/intrinsics.pp.ml: Fmt List String Types
