lib/ir/printer.pp.ml: Fmt Func Instr Ints List Types
