(** Types of the PIR intermediate representation.

    PIR is a small LLVM-like typed SSA IR.  Types are either [Void], a
    scalar, a typed pointer into the linear byte-addressed memory of the
    machine model, or a fixed-width vector of scalars.  Vectors carry an
    arbitrary lane count: before back-end legalization the lane count is
    the SPMD gang size, which need not match the machine vector width. *)

(** Scalar element kinds.  [I1] is the boolean / mask element type.
    Signedness is a property of operations, not of types, as in LLVM. *)
type scalar = I1 | I8 | I16 | I32 | I64 | F32 | F64
[@@deriving show { with_path = false }, eq, ord]

type t =
  | Void
  | Scalar of scalar
  | Ptr of scalar  (** typed pointer to elements of the given scalar kind *)
  | Vec of scalar * int  (** element kind, lane count *)
[@@deriving show { with_path = false }, eq, ord]

(* -- Scalar kind helpers -- *)

let scalar_bits = function
  | I1 -> 1
  | I8 -> 8
  | I16 -> 16
  | I32 -> 32
  | I64 -> 64
  | F32 -> 32
  | F64 -> 64

(** Storage footprint in bytes ([I1] stores as one byte). *)
let scalar_bytes = function
  | I1 | I8 -> 1
  | I16 -> 2
  | I32 | F32 -> 4
  | I64 | F64 -> 8

let is_float_scalar = function F32 | F64 -> true | _ -> false
let is_int_scalar s = not (is_float_scalar s)

(* -- Type helpers -- *)

let bool_ = Scalar I1
let i8 = Scalar I8
let i16 = Scalar I16
let i32 = Scalar I32
let i64 = Scalar I64
let f32 = Scalar F32
let f64 = Scalar F64

(** Total bit width of a value of this type (pointers are 64-bit). *)
let bits = function
  | Void -> 0
  | Scalar s -> scalar_bits s
  | Ptr _ -> 64
  | Vec (s, n) -> scalar_bits s * n

let is_vector = function Vec _ -> true | _ -> false
let is_scalar = function Scalar _ -> true | _ -> false
let is_pointer = function Ptr _ -> true | _ -> false
let is_float = function Scalar s | Vec (s, _) -> is_float_scalar s | _ -> false

let is_int = function
  | Scalar s | Vec (s, _) -> is_int_scalar s
  | _ -> false

(** Element kind of a scalar or vector type. *)
let elem = function
  | Scalar s | Vec (s, _) -> s
  | Ptr _ -> I64
  | Void -> invalid_arg "Types.elem: void"

(** Lane count; scalars count as a single lane. *)
let lanes = function Vec (_, n) -> n | Void -> 0 | _ -> 1

(** [widen t n] turns a scalar type into its [n]-lane vector form.
    Pointers widen to [I64] index vectors. *)
let widen t n =
  match t with
  | Scalar s -> Vec (s, n)
  | Ptr _ -> Vec (I64, n)
  | Vec (s, _) -> Vec (s, n)
  | Void -> Void

(** Mask type for an [n]-lane gang. *)
let mask n = Vec (I1, n)

let rec pp ppf t =
  match t with
  | Void -> Fmt.string ppf "void"
  | Scalar I1 -> Fmt.string ppf "i1"
  | Scalar I8 -> Fmt.string ppf "i8"
  | Scalar I16 -> Fmt.string ppf "i16"
  | Scalar I32 -> Fmt.string ppf "i32"
  | Scalar I64 -> Fmt.string ppf "i64"
  | Scalar F32 -> Fmt.string ppf "f32"
  | Scalar F64 -> Fmt.string ppf "f64"
  | Ptr s -> Fmt.pf ppf "%a*" pp (Scalar s)
  | Vec (s, n) -> Fmt.pf ppf "<%d x %a>" n pp (Scalar s)

let to_string t = Fmt.str "%a" pp t
