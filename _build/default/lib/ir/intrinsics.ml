(** Registry of the intrinsic functions understood by the tool-chain.

    Two families exist:

    - [psim.*] — the Parsimony programming-model API (paper §3).  In
      scalar SPMD functions these represent per-thread queries and
      horizontal operations; the vectorizer replaces them with vector IR
      and the SPMD reference executor gives them their multi-threaded
      semantics.

    - [math.*] — scalar math library calls.  The vectorizer maps them to
      vector math library calls: [sleef.*] in Parsimony mode (the SLEEF
      library used by the prototype) or [ispc.*] in ispc mode (ispc's
      built-in SIMD math library).  The cost model makes [ispc.pow.f32]
      2.6x faster than [sleef.pow.f32], reproducing the paper's Binomial
      Options gap (§6). *)

(* -- Parsimony API -- *)

let lane_num = "psim.lane_num"
let gang_sync = "psim.gang_sync"
let shuffle = "psim.shuffle"
let sad_u8 = "psim.sad_u8"  (* the vpsadbw abstraction of paper §7 *)

let is_psim name = String.length name > 5 && String.sub name 0 5 = "psim."

(** Horizontal operations require all gang threads to participate; they
    are the synchronization points of the SPMD reference executor. *)
let is_horizontal name = name = gang_sync || name = shuffle || name = sad_u8

(* -- Math library -- *)

let math_unary = [ "sqrt"; "rsqrt"; "exp"; "log"; "sin"; "cos"; "tan"; "atan" ]
let math_binary = [ "pow"; "atan2"; "fmod" ]

let is_math name = String.length name > 5 && String.sub name 0 5 = "math."
let is_sleef name = String.length name > 6 && String.sub name 0 6 = "sleef."
let is_ispc name = String.length name > 5 && String.sub name 0 5 = "ispc."

(** Vector math call produced from a scalar [math.op.fty] call.
    [lib] is ["sleef"] or ["ispc"]. *)
let vector_math_name ~lib scalar_name =
  match String.index_opt scalar_name '.' with
  | Some i -> lib ^ String.sub scalar_name i (String.length scalar_name - i)
  | None -> invalid_arg "Intrinsics.vector_math_name"

(** Base operation of a math call, e.g. ["pow"] from ["sleef.pow.f32"]. *)
let math_op name =
  match String.split_on_char '.' name with
  | _ :: op :: _ -> op
  | _ -> invalid_arg "Intrinsics.math_op"

let math_name op (s : Types.scalar) =
  Fmt.str "math.%s.%s" op (match s with Types.F32 -> "f32" | _ -> "f64")

(** Is [name] any call with a known vector implementation? *)
let has_vector_version name = is_math name

(** Arity of a math operation. *)
let math_arity op =
  if List.mem op math_unary then 1
  else if List.mem op math_binary then 2
  else invalid_arg ("Intrinsics.math_arity: " ^ op)
