(** Constant folding of integer operations, shared by fact inference,
    the rule checker, and IR simplification. *)

let ibin (k : Instr.ibin) w a b : int64 =
  let open Ints in
  match k with
  | Instr.Add -> add w a b
  | Instr.Sub -> sub w a b
  | Instr.Mul -> mul w a b
  | Instr.UDiv -> udiv w a b
  | Instr.SDiv -> sdiv w a b
  | Instr.URem -> urem w a b
  | Instr.SRem -> srem w a b
  | Instr.And -> logand w a b
  | Instr.Or -> logor w a b
  | Instr.Xor -> logxor w a b
  | Instr.Shl -> shl w a b
  | Instr.LShr -> lshr w a b
  | Instr.AShr -> ashr w a b
  | Instr.SMin -> smin w a b
  | Instr.SMax -> smax w a b
  | Instr.UMin -> umin w a b
  | Instr.UMax -> umax w a b
  | Instr.UAddSat -> uadd_sat w a b
  | Instr.SAddSat -> sadd_sat w a b
  | Instr.USubSat -> usub_sat w a b
  | Instr.SSubSat -> ssub_sat w a b
  | Instr.AvgrU -> avgr_u w a b
  | Instr.AbsDiffU -> abs_diff_u w a b
  | Instr.MulHiS -> mulhi_s w a b
  | Instr.MulHiU -> mulhi_u w a b

let iun (k : Instr.iun) w a : int64 =
  let open Ints in
  match k with
  | Instr.INot -> lognot w a
  | Instr.INeg -> neg w a
  | Instr.IAbs -> abs w a
  | Instr.Clz -> clz w a
  | Instr.Ctz -> ctz w a
  | Instr.Popcnt -> popcnt w a

let icmp (p : Instr.ipred) w a b : bool =
  let open Ints in
  match p with
  | Instr.Eq -> norm w a = norm w b
  | Instr.Ne -> norm w a <> norm w b
  | Instr.Ult -> ucompare w a b < 0
  | Instr.Ule -> ucompare w a b <= 0
  | Instr.Ugt -> ucompare w a b > 0
  | Instr.Uge -> ucompare w a b >= 0
  | Instr.Slt -> scompare w a b < 0
  | Instr.Sle -> scompare w a b <= 0
  | Instr.Sgt -> scompare w a b > 0
  | Instr.Sge -> scompare w a b >= 0
