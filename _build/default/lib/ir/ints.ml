(** Two's-complement integer arithmetic at the narrow widths used by PIR.

    Runtime integer values are stored as [int64] in a canonical
    *zero-extended* form: the value occupies the low [w] bits and all
    higher bits are zero.  Signed operations sign-extend internally and
    re-normalize on the way out. *)

let mask_of_bits w = if w >= 64 then -1L else Int64.(sub (shift_left 1L w) 1L)

(** Canonicalize to the zero-extended representation at width [w]. *)
let norm w x = Int64.logand x (mask_of_bits w)

(** Sign-extend a canonical value of width [w] to a full [int64]. *)
let sext w x =
  if w >= 64 then x
  else
    let sign_bit = Int64.shift_left 1L (w - 1) in
    if Int64.logand x sign_bit <> 0L then
      Int64.logor x (Int64.lognot (mask_of_bits w))
    else norm w x

(** Interpret a canonical value of width [w] as an unsigned number.
    Widths below 64 always fit; at width 64 the result may be negative
    when viewed as an OCaml [int64], callers must use unsigned compares. *)
let zext w x = norm w x

let min_signed w = Int64.neg (Int64.shift_left 1L (w - 1))
let max_signed w = Int64.sub (Int64.shift_left 1L (w - 1)) 1L
let max_unsigned w = mask_of_bits w

(* -- Comparisons on canonical values -- *)

let ucompare w a b = Int64.unsigned_compare (zext w a) (zext w b)
let scompare w a b = Int64.compare (sext w a) (sext w b)

(* -- Arithmetic, all returning canonical values at width [w] -- *)

let add w a b = norm w (Int64.add a b)
let sub w a b = norm w (Int64.sub a b)
let mul w a b = norm w (Int64.mul a b)
let logand w a b = norm w (Int64.logand a b)
let logor w a b = norm w (Int64.logor a b)
let logxor w a b = norm w (Int64.logxor a b)
let lognot w a = norm w (Int64.lognot a)
let neg w a = norm w (Int64.neg a)

let shl w a b =
  let s = Int64.to_int (norm w b) mod 64 in
  if s >= w then 0L else norm w (Int64.shift_left a s)

let lshr w a b =
  let s = Int64.to_int (norm w b) mod 64 in
  if s >= w then 0L else norm w (Int64.shift_right_logical (zext w a) s)

let ashr w a b =
  let s = Int64.to_int (norm w b) mod 64 in
  let s = if s >= w then w - 1 else s in
  norm w (Int64.shift_right (sext w a) s)

(** Unsigned division; division by zero yields all-ones, matching the
    machine model's defined (rather than trapping) semantics. *)
let udiv w a b =
  if norm w b = 0L then mask_of_bits w
  else norm w (Int64.unsigned_div (zext w a) (zext w b))

let sdiv w a b =
  if norm w b = 0L then mask_of_bits w else norm w (Int64.div (sext w a) (sext w b))

let urem w a b =
  if norm w b = 0L then norm w a
  else norm w (Int64.unsigned_rem (zext w a) (zext w b))

let srem w a b =
  if norm w b = 0L then 0L else norm w (Int64.rem (sext w a) (sext w b))

let smin w a b = if scompare w a b <= 0 then norm w a else norm w b
let smax w a b = if scompare w a b >= 0 then norm w a else norm w b
let umin w a b = if ucompare w a b <= 0 then norm w a else norm w b
let umax w a b = if ucompare w a b >= 0 then norm w a else norm w b

(* -- Saturating arithmetic (SIMD ISAs expose these directly) -- *)

let uadd_sat w a b =
  let r = Int64.add (zext w a) (zext w b) in
  if w >= 64 then
    (* overflow iff result unsigned-less-than an operand *)
    if Int64.unsigned_compare r a < 0 then -1L else r
  else if Int64.unsigned_compare r (max_unsigned w) > 0 then max_unsigned w
  else r

let usub_sat w a b = if ucompare w a b <= 0 then 0L else sub w a b

let sadd_sat w a b =
  let r = Int64.add (sext w a) (sext w b) in
  if w >= 64 then
    let sa = sext w a and sb = sext w b in
    if sa >= 0L && sb >= 0L && r < 0L then max_signed 64
    else if sa < 0L && sb < 0L && r >= 0L then min_signed 64
    else r
  else if r > max_signed w then norm w (max_signed w)
  else if r < min_signed w then norm w (min_signed w)
  else norm w r

let ssub_sat w a b =
  let r = Int64.sub (sext w a) (sext w b) in
  if w >= 64 then
    let sa = sext w a and sb = sext w b in
    if sa >= 0L && sb < 0L && r < 0L then max_signed 64
    else if sa < 0L && sb >= 0L && r >= 0L then min_signed 64
    else r
  else if r > max_signed w then norm w (max_signed w)
  else if r < min_signed w then norm w (min_signed w)
  else norm w r

(** Rounded unsigned average [(a + b + 1) >> 1], the x86 [pavgb]/[pavgw]
    operation. *)
let avgr_u w a b =
  let r = Int64.add (Int64.add (zext w a) (zext w b)) 1L in
  if w >= 64 then Int64.shift_right_logical r 1 (* cannot overflow into bit 65 for w<64 only; for w=64 approximate *)
  else norm w (Int64.shift_right_logical r 1)

(** Unsigned absolute difference [|a - b|]. *)
let abs_diff_u w a b = if ucompare w a b >= 0 then sub w a b else sub w b a

(** Upper half of the signed [w x w -> 2w] product. *)
let mulhi_s w a b =
  if w <= 32 then
    let p = Int64.mul (sext w a) (sext w b) in
    norm w (Int64.shift_right p w)
  else
    (* 64x64 high half via 32-bit limbs *)
    let a = sext w a and b = sext w b in
    let alo = Int64.logand a 0xFFFFFFFFL and ahi = Int64.shift_right a 32 in
    let blo = Int64.logand b 0xFFFFFFFFL and bhi = Int64.shift_right b 32 in
    let ll = Int64.mul alo blo in
    let lh = Int64.mul alo bhi in
    let hl = Int64.mul ahi blo in
    let hh = Int64.mul ahi bhi in
    let carry =
      Int64.add
        (Int64.add (Int64.shift_right_logical ll 32) (Int64.logand lh 0xFFFFFFFFL))
        (Int64.logand hl 0xFFFFFFFFL)
    in
    Int64.add
      (Int64.add hh (Int64.shift_right lh 32))
      (Int64.add (Int64.shift_right hl 32) (Int64.shift_right_logical carry 32))

(** Upper half of the unsigned [w x w -> 2w] product. *)
let mulhi_u w a b =
  if w <= 32 then
    let p = Int64.mul (zext w a) (zext w b) in
    norm w (Int64.shift_right_logical p w)
  else
    let a = zext w a and b = zext w b in
    let alo = Int64.logand a 0xFFFFFFFFL
    and ahi = Int64.shift_right_logical a 32 in
    let blo = Int64.logand b 0xFFFFFFFFL
    and bhi = Int64.shift_right_logical b 32 in
    let ll = Int64.mul alo blo in
    let lh = Int64.mul alo bhi in
    let hl = Int64.mul ahi blo in
    let hh = Int64.mul ahi bhi in
    let carry =
      Int64.add
        (Int64.add (Int64.shift_right_logical ll 32) (Int64.logand lh 0xFFFFFFFFL))
        (Int64.logand hl 0xFFFFFFFFL)
    in
    Int64.add
      (Int64.add hh (Int64.shift_right_logical lh 32))
      (Int64.add
         (Int64.shift_right_logical hl 32)
         (Int64.shift_right_logical carry 32))

let abs w a =
  let s = sext w a in
  if s >= 0L then norm w s else norm w (Int64.neg s)

let clz w a =
  if norm w a = 0L then Int64.of_int w
  else
    let rec find i =
      if Int64.logand (lshr w a (Int64.of_int i)) 1L = 1L then i else find (i - 1)
    in
    Int64.of_int (w - 1 - find (w - 1))

let ctz w a =
  if norm w a = 0L then Int64.of_int w
  else
    let rec find i =
      if Int64.logand (lshr w a (Int64.of_int i)) 1L = 1L then i else find (i + 1)
    in
    Int64.of_int (find 0)

let popcnt w a =
  let rec go acc i =
    if i >= w then acc
    else go (acc + Int64.to_int (Int64.logand (lshr w a (Int64.of_int i)) 1L)) (i + 1)
  in
  Int64.of_int (go 0 0)
