lib/autovec/autovec.ml: Array Fmt Func Hashtbl Instr Int64 Intrinsics List Option Panalysis Pir Printer Types
