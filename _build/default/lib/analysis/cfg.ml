(** Control-flow graph utilities over PIR functions: predecessor maps,
    reverse postorder, and reachability. *)

type t = {
  func : Pir.Func.t;
  blocks : (string, Pir.Func.block) Hashtbl.t;
  succs : (string, string list) Hashtbl.t;
  preds : (string, string list) Hashtbl.t;
  rpo : string list;  (** reverse postorder over reachable blocks *)
}

let block t name = Hashtbl.find t.blocks name
let succs t name = Option.value ~default:[] (Hashtbl.find_opt t.succs name)
let preds t name = Option.value ~default:[] (Hashtbl.find_opt t.preds name)
let entry t = (Pir.Func.entry t.func).bname

let build (f : Pir.Func.t) : t =
  let blocks = Hashtbl.create 16 in
  List.iter (fun (b : Pir.Func.block) -> Hashtbl.replace blocks b.bname b) f.blocks;
  let succs = Hashtbl.create 16 in
  let preds = Hashtbl.create 16 in
  List.iter
    (fun (b : Pir.Func.block) ->
      let ss = Pir.Func.successors b in
      Hashtbl.replace succs b.bname ss;
      List.iter
        (fun s ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt preds s) in
          Hashtbl.replace preds s (cur @ [ b.bname ]))
        ss)
    f.blocks;
  (* postorder DFS from entry *)
  let visited = Hashtbl.create 16 in
  let po = ref [] in
  let rec dfs name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.replace visited name ();
      List.iter dfs (Option.value ~default:[] (Hashtbl.find_opt succs name));
      po := name :: !po
    end
  in
  (match f.blocks with [] -> () | b :: _ -> dfs b.bname);
  { func = f; blocks; succs; preds; rpo = !po }

let reachable t name = List.mem name t.rpo

(** Index of each block in reverse postorder (smaller = earlier). *)
let rpo_index t =
  let h = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace h n i) t.rpo;
  h

(** Back edges [(src, dst)] where [dst] occurs no later than [src] in RPO
    and [dst] dominates [src] is checked by callers via [Dom]. *)
let edges t =
  List.concat_map (fun n -> List.map (fun s -> (n, s)) (succs t n)) t.rpo
