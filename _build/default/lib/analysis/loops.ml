(** Natural-loop discovery and induction-variable recognition.

    Used by the auto-vectorizer baseline (loop legality and widening) and
    by the structured-region recovery (identifying loop headers). *)

type loop = {
  header : string;
  latches : string list;  (** sources of back edges into [header] *)
  body : string list;  (** all blocks in the loop, including header *)
  exits : (string * string) list;  (** (inside block, outside target) *)
}

type t = { loops : loop list; headers : (string, loop) Hashtbl.t }

let find (cfg : Cfg.t) : t =
  let dom = Dom.compute cfg in
  (* back edge: n -> h where h dominates n *)
  let back_edges =
    List.filter (fun (n, h) -> Dom.dominates dom h n) (Cfg.edges cfg)
  in
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (n, h) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_header h) in
      Hashtbl.replace by_header h (cur @ [ n ]))
    back_edges;
  let loops =
    Hashtbl.fold
      (fun header latches acc ->
        (* natural loop body: header + all nodes reaching a latch without
           passing through the header *)
        let body = Hashtbl.create 8 in
        Hashtbl.replace body header ();
        let rec pull n =
          if not (Hashtbl.mem body n) then begin
            Hashtbl.replace body n ();
            List.iter pull (Cfg.preds cfg n)
          end
        in
        List.iter pull latches;
        let body_list =
          List.filter (fun n -> Hashtbl.mem body n) cfg.Cfg.rpo
        in
        let exits =
          List.concat_map
            (fun n ->
              List.filter_map
                (fun s -> if Hashtbl.mem body s then None else Some (n, s))
                (Cfg.succs cfg n))
            body_list
        in
        { header; latches; body = body_list; exits } :: acc)
      by_header []
  in
  let headers = Hashtbl.create 8 in
  List.iter (fun l -> Hashtbl.replace headers l.header l) loops;
  { loops; headers }

let is_header t name = Hashtbl.mem t.headers name
let loop_of_header t name = Hashtbl.find_opt t.headers name

(** Innermost loops: loops whose body contains no other loop's header. *)
let innermost t =
  List.filter
    (fun l ->
      List.for_all (fun n -> n = l.header || not (is_header t n)) l.body)
    t.loops

(** A recognized induction variable: [phi] starting at [init] in the
    preheader and advancing by constant [step] via [next] each
    iteration. *)
type ivar = { phi : int; init : Pir.Instr.operand; step : int64; next : int }

(** Recognize induction variables of loop [l]: header phis of the form
    [phi [preheader: init] [latch: %next]] where [%next = add %phi, c]
    inside the loop. *)
let induction_vars (cfg : Cfg.t) (l : loop) : ivar list =
  let header_block = Cfg.block cfg l.header in
  let defs = Hashtbl.create 16 in
  List.iter
    (fun bn ->
      let b = Cfg.block cfg bn in
      List.iter (fun (i : Pir.Instr.instr) -> Hashtbl.replace defs i.id i) b.instrs)
    l.body;
  List.filter_map
    (fun (i : Pir.Instr.instr) ->
      match i.op with
      | Pir.Instr.Phi incoming when List.length incoming = 2 -> (
          let in_loop l' = List.mem l' l.body in
          let init_in, next_in =
            List.partition (fun (lbl, _) -> not (in_loop lbl)) incoming
          in
          match (init_in, next_in) with
          | [ (_, init) ], [ (_, Pir.Instr.Var next) ] -> (
              match Hashtbl.find_opt defs next with
              | Some { op = Pir.Instr.Ibin (Pir.Instr.Add, Var p, Const (Cint (_, c))); _ }
                when p = i.id ->
                  Some { phi = i.id; init; step = c; next }
              | Some { op = Pir.Instr.Ibin (Pir.Instr.Add, Const (Cint (_, c)), Var p); _ }
                when p = i.id ->
                  Some { phi = i.id; init; step = c; next }
              | _ -> None)
          | _ -> None)
      | _ -> None)
    header_block.instrs
