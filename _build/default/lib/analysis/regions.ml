(** Structured-region recovery.

    The Parsimony vectorizer assumes structured control flow (paper
    §4.2.1 relies on LLVM's structurizer; unstructured flow would need
    partial linearization).  Our front-end emits structured CFGs by
    construction; this module recovers the region tree — sequences,
    if-then-else with a join, and single-exit while loops — and fails
    with [Unstructured] otherwise.  Join points are located with the
    post-dominator tree. *)

type region =
  | Basic of Pir.Func.block
      (** straight-line code; the parent handles its terminator *)
  | If of {
      cond : Pir.Instr.operand;  (** computed at the end of the preceding block *)
      then_ : region list;
      else_ : region list;
      join : string;
    }
  | Loop of {
      header : Pir.Func.block;  (** phis + exit condition, re-entered per iteration *)
      cond : Pir.Instr.operand;  (** loop continues while true *)
      body : region list;
      exit : string;
    }

exception Unstructured of string

let fail fmt = Fmt.kstr (fun s -> raise (Unstructured s)) fmt

type tree = { entry_regions : region list; ret_block : string }

(** Recover the region tree of [f].  The function must end in exactly the
    structured shapes produced by the front-end. *)
let of_func (f : Pir.Func.t) : region list =
  let cfg = Cfg.build f in
  let loops = Loops.find cfg in
  let pdom = Dom.compute_post cfg in
  let visited = Hashtbl.create 16 in
  let visit name =
    if Hashtbl.mem visited name then fail "block %s visited twice" name;
    Hashtbl.replace visited name ()
  in
  (* Build the sequence of regions starting at [cur], stopping when
     control reaches [stop] (exclusive). *)
  let rec build cur stop : region list =
    if Some cur = stop then []
    else
      let b = Cfg.block cfg cur in
      match Loops.loop_of_header loops cur with
      | Some l -> (
          visit cur;
          match b.term with
          | Pir.Instr.CondBr (c, body_l, exit_l)
            when List.mem body_l l.body && not (List.mem exit_l l.body) ->
              let body = build body_l (Some cur) in
              Loop { header = b; cond = c; body; exit = exit_l }
              :: build exit_l stop
          | Pir.Instr.CondBr (c, exit_l, body_l)
            when List.mem body_l l.body && not (List.mem exit_l l.body) ->
              (* inverted form: continue on false — normalize by treating
                 the negation as the continue condition is not possible
                 without inserting code, so reject; the front-end always
                 emits continue-on-true. *)
              ignore (c, exit_l, body_l);
              fail "loop %s: continue-on-false header" cur
          | _ -> fail "loop header %s has unexpected terminator" cur)
      | None -> (
          visit cur;
          match b.term with
          | Pir.Instr.Ret _ | Pir.Instr.Unreachable -> [ Basic b ]
          | Pir.Instr.Br next -> Basic b :: build next stop
          | Pir.Instr.CondBr (c, t, e) ->
              let join =
                match Dom.ipostdom pdom cur with
                | Some j when j <> Dom.virtual_exit -> j
                | _ -> fail "no join for conditional at %s" cur
              in
              let then_ = build t (Some join) in
              let else_ = build e (Some join) in
              Basic b :: If { cond = c; then_; else_; join } :: build join stop)
  in
  match f.blocks with
  | [] -> fail "empty function"
  | entry :: _ -> build entry.bname None

(** All [Basic]/header blocks of a region list, in order. *)
let rec blocks_of_regions rs =
  List.concat_map
    (function
      | Basic b -> [ b ]
      | If { then_; else_; _ } ->
          blocks_of_regions then_ @ blocks_of_regions else_
      | Loop { header; body; _ } -> header :: blocks_of_regions body)
    rs

let rec pp_region ppf = function
  | Basic b -> Fmt.pf ppf "block %s" b.Pir.Func.bname
  | If { then_; else_; join; _ } ->
      Fmt.pf ppf "@[<v 2>if {%a} else {%a} join %s@]"
        Fmt.(list ~sep:(any "; ") pp_region)
        then_
        Fmt.(list ~sep:(any "; ") pp_region)
        else_ join
  | Loop { header; body; exit; _ } ->
      Fmt.pf ppf "@[<v 2>loop %s {%a} exit %s@]" header.Pir.Func.bname
        Fmt.(list ~sep:(any "; ") pp_region)
        body exit
