(** Dominator trees via the Cooper–Harvey–Kennedy iterative algorithm.

    Also computes post-dominators (on the reversed CFG with a virtual
    exit), which the region recovery uses to find join points of
    conditionals. *)

type t = {
  idom : (string, string) Hashtbl.t;  (** entry maps to itself *)
  order : (string, int) Hashtbl.t;  (** RPO index used for intersection *)
  root : string;
}

let idom t name = Hashtbl.find_opt t.idom name

(** [dominates t a b]: does [a] dominate [b]?  Reflexive. *)
let dominates t a b =
  let rec walk b = a = b || (b <> t.root && match idom t b with Some p -> walk p | None -> false) in
  walk b

let compute_generic ~root ~nodes_rpo ~preds : t =
  let order = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace order n i) nodes_rpo;
  let idom : (string, string) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.replace idom root root;
  let intersect a b =
    let rec go a b =
      if a = b then a
      else
        let ia = Hashtbl.find order a and ib = Hashtbl.find order b in
        if ia > ib then go (Hashtbl.find idom a) b else go a (Hashtbl.find idom b)
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        if n <> root then begin
          let ps =
            List.filter (fun p -> Hashtbl.mem idom p && Hashtbl.mem order p) (preds n)
          in
          match ps with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if Hashtbl.find_opt idom n <> Some new_idom then begin
                Hashtbl.replace idom n new_idom;
                changed := true
              end
        end)
      nodes_rpo
  done;
  { idom; order; root }

(** Dominator tree of [cfg]. *)
let compute (cfg : Cfg.t) : t =
  compute_generic ~root:(Cfg.entry cfg) ~nodes_rpo:cfg.rpo
    ~preds:(fun n -> Cfg.preds cfg n)

(** The label used as the virtual exit node for post-dominance. *)
let virtual_exit = "$exit"

(** Post-dominator tree: dominators of the reversed CFG rooted at a
    virtual exit connected to every [Ret]/[Unreachable] block. *)
let compute_post (cfg : Cfg.t) : t =
  let exits =
    List.filter (fun n -> Cfg.succs cfg n = []) cfg.rpo
  in
  let rsuccs n = if n = virtual_exit then exits else Cfg.preds cfg n in
  ignore rsuccs;
  (* postorder of reversed graph from virtual exit *)
  let visited = Hashtbl.create 16 in
  let po = ref [] in
  let rec dfs n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.replace visited n ();
      let ss = if n = virtual_exit then exits else Cfg.preds cfg n in
      List.iter dfs ss;
      po := n :: !po
    end
  in
  dfs virtual_exit;
  let rpreds n =
    if n = virtual_exit then []
    else
      let direct = Cfg.succs cfg n in
      if Cfg.succs cfg n = [] then [ virtual_exit ] else direct
  in
  compute_generic ~root:virtual_exit ~nodes_rpo:!po ~preds:rpreds

(** Immediate post-dominator of [n] (may be [virtual_exit]). *)
let ipostdom (pdom : t) n = idom pdom n
