lib/analysis/cfg.ml: Hashtbl List Option Pir
