lib/analysis/loops.ml: Cfg Dom Hashtbl List Option Pir
