lib/analysis/check.ml: Cfg Dom Fmt Hashtbl List Pir
