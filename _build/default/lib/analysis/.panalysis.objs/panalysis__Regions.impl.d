lib/analysis/regions.ml: Cfg Dom Fmt Hashtbl List Loops Pir
