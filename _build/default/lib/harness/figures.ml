(** Regenerates the paper's evaluation artifacts (DESIGN.md experiment
    index): Figure 4, Figure 5, the code-size comparison, and the
    ablation study.  Output is textual tables whose rows mirror the
    figures' series. *)

open Psimdlib

let geomean = Runner.geomean

type row = { name : string; series : (string * float) list }

let pp_table ppf ~title ~unit rows =
  Fmt.pf ppf "@.== %s ==@." title;
  (match rows with
  | [] -> ()
  | r0 :: _ ->
      Fmt.pf ppf "%-36s" "benchmark";
      List.iter (fun (s, _) -> Fmt.pf ppf "%12s" s) r0.series;
      Fmt.pf ppf "@.");
  List.iter
    (fun r ->
      Fmt.pf ppf "%-36s" r.name;
      List.iter (fun (_, v) -> Fmt.pf ppf "%12.2f" v) r.series;
      Fmt.pf ppf "@.")
    rows;
  (* geomeans per series *)
  (match rows with
  | [] -> ()
  | r0 :: _ ->
      Fmt.pf ppf "%-36s" "geomean";
      List.iteri
        (fun i _ ->
          let vals = List.map (fun r -> snd (List.nth r.series i)) rows in
          Fmt.pf ppf "%12.2f" (geomean vals))
        r0.series;
      Fmt.pf ppf "@.");
  Fmt.pf ppf "(%s)@." unit

(* -- Figure 4: ispc suite, normalized to LLVM auto-vectorization -- *)

let figure4 ?(kernels = Pispc.Suite.all) () : row list =
  List.map
    (fun (k : Workload.kernel) ->
      let auto = (Runner.run k Runner.Autovec).cycles in
      let pars = (Runner.run k (Runner.ParsimonyImpl Parsimony.Options.default)).cycles in
      let ispc = (Runner.run k (Runner.ParsimonyImpl Parsimony.Options.ispc)).cycles in
      {
        name = k.kname;
        series = [ ("ispc", auto /. ispc); ("parsimony", auto /. pars) ];
      })
    kernels

(* -- Figure 5: Simd Library suite, normalized to LLVM scalar -- *)

let figure5 ?(kernels = Registry.all) () : row list =
  List.map
    (fun (k : Workload.kernel) ->
      let scalar = (Runner.run k Runner.Scalar).cycles in
      let auto = (Runner.run k Runner.Autovec).cycles in
      let pars = (Runner.run k (Runner.ParsimonyImpl Parsimony.Options.default)).cycles in
      let hand =
        match k.hand with
        | Some _ -> scalar /. (Runner.run k Runner.Hand).cycles
        | None -> nan
      in
      {
        name = k.kname;
        series =
          [
            ("autovec", scalar /. auto);
            ("parsimony", scalar /. pars);
            ("hand", hand);
          ];
      })
    kernels

(* headline numbers of §6 derived from the figure data *)
let summary_figure5 rows =
  let col name =
    List.filter_map
      (fun r ->
        match List.assoc_opt name r.series with
        | Some v when Float.is_finite v -> Some v
        | _ -> None)
      rows
  in
  let ga = geomean (col "autovec") in
  let gp = geomean (col "parsimony") in
  let gh = geomean (col "hand") in
  Fmt.str
    "autovec geomean %.2fx (paper: 3.46x); parsimony %.2fx (paper: 7.70x); \
     hand-written %.2fx (paper: 7.91x); parsimony/hand = %.2f (paper: 0.97); \
     parsimony/autovec = %.2f (paper: 2.23)"
    ga gp gh (gp /. gh) (gp /. ga)

let summary_figure4 rows =
  let col name = List.map (fun r -> List.assoc name r.series) rows in
  Fmt.str
    "parsimony geomean %.2fx over autovec (paper: 5.9); ispc %.2fx (paper: \
     6.0); binomial parsimony/ispc = %.2f (paper: 0.71, the SLEEF pow gap)"
    (geomean (col "parsimony"))
    (geomean (col "ispc"))
    (let r = List.find (fun r -> r.name = "binomial_options") rows in
     List.assoc "parsimony" r.series /. List.assoc "ispc" r.series)

(* -- code size: Parsimony source lines vs the intrinsics-style
   implementation (paper §6: 7x average reduction) -- *)

let code_size ?(kernels = Registry.all) () :
    (string * int * int option) list =
  List.map
    (fun (k : Workload.kernel) ->
      let psim_lines = Workload.source_lines k.psim_src in
      let hand_instrs =
        match k.hand with
        | None -> None
        | Some build ->
            let m = Pir.Func.create_module "sz" in
            build m;
            Some
              (List.fold_left (fun acc f -> acc + Pir.Func.size f) 0 m.funcs)
      in
      (k.kname, psim_lines, hand_instrs))
    kernels

let summary_code_size entries =
  let ratios =
    List.filter_map
      (fun (_, p, h) ->
        match h with
        | Some h when p > 0 -> Some (float_of_int h /. float_of_int p)
        | _ -> None)
      entries
  in
  Fmt.str
    "intrinsics-style implementation is %.1fx larger than the Parsimony port \
     on average (%d kernels; paper reports 7x source reduction)"
    (geomean ratios) (List.length ratios)

(* -- ablations (DESIGN.md): each vectorizer design choice on a kernel
   mix that exposes it -- *)

let ablation_cases =
  [
    ("shape analysis off", { Parsimony.Options.default with shape_analysis = false });
    ("strided shuffles off", { Parsimony.Options.default with stride_shuffle_bound = 0 });
    ("uniform branches linearized", { Parsimony.Options.default with uniform_branches = false });
    ("boscc on", { Parsimony.Options.default with boscc = true });
  ]

let ablation_kernels () =
  List.filter_map
    (fun n -> Registry.find n)
    [
      "operation_binary8u_saturated_add";
      "bgra_to_gray";
      "deinterleave_uv";
      "gaussian_blur_3x3";
      "get_col_sums";
    ]
  @ List.filter
      (fun (k : Workload.kernel) -> k.kname = "mandelbrot")
      Pispc.Suite.all

let ablations () : row list =
  List.map
    (fun (k : Workload.kernel) ->
      let base = (Runner.run k (Runner.ParsimonyImpl Parsimony.Options.default)).cycles in
      {
        name = k.kname;
        series =
          List.map
            (fun (label, opts) ->
              let c = (Runner.run k (Runner.ParsimonyImpl opts)).cycles in
              (* slowdown relative to the default configuration *)
              (label, c /. base))
            ablation_cases;
      })
    (ablation_kernels ())

(* -- compile time: the pass (including online precondition checks) -- *)

let compile_time_stats () =
  let t0 = Unix.gettimeofday () in
  let count = ref 0 in
  List.iter
    (fun (k : Workload.kernel) ->
      let m = Pfrontend.Lower.compile ~name:k.kname k.psim_src in
      ignore (Parsimony.Vectorizer.run_module m);
      incr count)
    Registry.all;
  let dt = Unix.gettimeofday () -. t0 in
  Fmt.str
    "compiled+vectorized %d Parsimony kernels in %.3fs (%.2fms each, online \
     rule checks included — 'fractions of a second', §4.2.2)"
    !count dt
    (1000.0 *. dt /. float_of_int !count)
