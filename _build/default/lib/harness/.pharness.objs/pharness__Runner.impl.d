lib/harness/runner.ml: Array Float Fmt Int64 List Panalysis Parsimony Pautovec Pfrontend Pir Pmachine Psimdlib Workload
