lib/harness/figures.ml: Float Fmt List Parsimony Pfrontend Pir Pispc Psimdlib Registry Runner Unix Workload
