(* psimc — the Parsimony compiler driver.

   Compiles PsimC source files through the reproduction tool-chain:

     psimc build FILE.psim          type-check + vectorize, report stats
     psimc ir FILE.psim             print the scalar PIR
     psimc vec FILE.psim            print the vectorized PIR
     psimc shapes FILE.psim         print shape analysis results
     psimc run FILE.psim -e F ARGS  execute function F on the simulator
     psimc autovec FILE.psim        run the auto-vectorizer baseline
     psimc verify-rules             offline shape-rule verification *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let compile_file ?(simplify = true) ~vectorize ~opts path =
  let m = Pfrontend.Lower.compile ~name:(Filename.basename path) (read_file path) in
  Panalysis.Check.check_module m;
  let reports = if vectorize then Parsimony.Vectorizer.run_module ~opts m else [] in
  if vectorize then Panalysis.Check.check_module m;
  if simplify then Parsimony.Simplify.run_module m;
  (m, reports)

(* -- common options -- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"PsimC source file")

let math_lib =
  Arg.(
    value
    & opt (enum [ ("sleef", "sleef"); ("ispc", "ispc") ]) "sleef"
    & info [ "math-lib" ] ~doc:"Vector math library to target (sleef or ispc)")

let no_shapes =
  Arg.(value & flag & info [ "no-shape-analysis" ] ~doc:"Disable shape analysis (ablation)")

let boscc =
  Arg.(value & flag & info [ "boscc" ] ~doc:"Branch on superword condition codes")

let opts_term =
  let mk math_lib no_shapes boscc =
    {
      Parsimony.Options.default with
      math_lib;
      shape_analysis = not no_shapes;
      boscc;
    }
  in
  Term.(const mk $ math_lib $ no_shapes $ boscc)

(* -- subcommands -- *)

let build_cmd =
  let run opts file =
    let _, reports = compile_file ~vectorize:true ~opts file in
    List.iter
      (fun r -> Fmt.pr "%a@." Parsimony.Vectorizer.pp_report r)
      reports;
    Fmt.pr "ok@."
  in
  Cmd.v (Cmd.info "build" ~doc:"Type-check and vectorize; print pass statistics")
    Term.(const run $ opts_term $ file_arg)

let ir_cmd =
  let run file =
    let m, _ = compile_file ~vectorize:false ~opts:Parsimony.Options.default file in
    Fmt.pr "%a@." Pir.Printer.pp_module m
  in
  Cmd.v (Cmd.info "ir" ~doc:"Print the scalar PIR (before vectorization)")
    Term.(const run $ file_arg)

let vec_cmd =
  let run opts file =
    let m, _ = compile_file ~vectorize:true ~opts file in
    Fmt.pr "%a@." Pir.Printer.pp_module m
  in
  Cmd.v (Cmd.info "vec" ~doc:"Print the vectorized PIR")
    Term.(const run $ opts_term $ file_arg)

let shapes_cmd =
  let run file =
    let m, _ = compile_file ~vectorize:false ~simplify:false ~opts:Parsimony.Options.default file in
    List.iter
      (fun (f : Pir.Func.t) ->
        match f.spmd with
        | None -> ()
        | Some _ ->
            Fmt.pr "@.%a" Pir.Printer.pp_func f;
            let info = Pshapes.Shapes.analyze f in
            Pir.Func.iter_instrs f (fun _ i ->
                if i.Pir.Instr.ty <> Pir.Types.Void then
                  Fmt.pr "  %%%d : %a@." i.id Pshapes.Shapes.pp_shape
                    (Pshapes.Shapes.shape_of info (Pir.Instr.Var i.id)));
            Fmt.pr "rules fired:@.";
            Hashtbl.iter
              (fun r n -> Fmt.pr "  %-24s %d@." r n)
              info.Pshapes.Shapes.rule_hits)
      m.funcs
  in
  Cmd.v
    (Cmd.info "shapes"
       ~doc:"Print per-value shape analysis results for SPMD functions")
    Term.(const run $ file_arg)

let autovec_cmd =
  let run file =
    let m = Pfrontend.Lower.compile ~name:file (read_file file) in
    let reports = Pautovec.Autovec.run_module m in
    List.iter (fun r -> Fmt.pr "%a@." Pautovec.Autovec.pp_report r) reports
  in
  Cmd.v
    (Cmd.info "autovec" ~doc:"Run the loop auto-vectorizer baseline; report per-loop outcomes")
    Term.(const run $ file_arg)

let run_cmd =
  let entry =
    Arg.(
      required
      & opt (some string) None
      & info [ "e"; "entry" ] ~docv:"FUNC" ~doc:"Function to execute")
  in
  let scalar =
    Arg.(value & flag & info [ "scalar" ] ~doc:"Skip vectorization (SPMD reference executor)")
  in
  let args =
    Arg.(
      value & pos_right 0 string []
      & info [] ~docv:"ARGS"
          ~doc:
            "Arguments: integers/floats passed directly; 'iN' allocates an \
             N-element i32 buffer initialized 0..N-1 and passes its address \
             (printed back after the run)")
  in
  let run opts file entry scalar args =
    let m, _ =
      compile_file ~vectorize:(not scalar) ~opts file
    in
    let t = Pmachine.Interp.create m in
    let mem = t.Pmachine.Interp.mem in
    let buffers = ref [] in
    let parse_arg a =
      if String.length a > 1 && a.[0] = 'i' then begin
        let n = int_of_string (String.sub a 1 (String.length a - 1)) in
        let addr =
          Pmachine.Memory.alloc_array mem Pir.Types.I32
            (Array.init n (fun i -> Pmachine.Value.I (Int64.of_int i)))
        in
        buffers := (addr, n) :: !buffers;
        Pmachine.Value.I (Int64.of_int addr)
      end
      else if String.contains a '.' then Pmachine.Value.F (float_of_string a)
      else Pmachine.Value.I (Int64.of_string a)
    in
    let vargs = List.map parse_arg args in
    let result = Pmachine.Interp.run t entry vargs in
    Fmt.pr "result: %a@." Pmachine.Value.pp result;
    Fmt.pr "cycles: %.0f  instructions: %d (vector: %d)@."
      t.Pmachine.Interp.stats.cycles t.Pmachine.Interp.stats.instrs
      t.Pmachine.Interp.stats.vector_instrs;
    List.iter
      (fun (addr, n) ->
        let vals = Pmachine.Memory.read_array mem Pir.Types.I32 addr n in
        Fmt.pr "buffer@%d: %a@." addr
          Fmt.(array ~sep:(any " ") Pmachine.Value.pp)
          (Array.sub vals 0 (min n 32)))
      (List.rev !buffers)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a function on the simulated machine")
    Term.(const run $ opts_term $ file_arg $ entry $ scalar $ args)

let verify_rules_cmd =
  let exhaustive =
    Arg.(value & flag & info [ "exhaustive" ] ~doc:"Exhaustive 8-bit base enumeration")
  in
  let run exhaustive =
    let reports = Psmt.Verify.check_all ~exhaustive () in
    List.iter (fun r -> Fmt.pr "%a@." Psmt.Verify.pp_report r) reports;
    if Psmt.Verify.all_ok reports then Fmt.pr "all rules verified@."
    else exit 1
  in
  Cmd.v
    (Cmd.info "verify-rules"
       ~doc:"Offline verification of the conditional shape-transformation rules")
    Term.(const run $ exhaustive)

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  let doc = "Parsimony SPMD compiler (CGO'23 reproduction)" in
  let info = Cmd.info "psimc" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ build_cmd; ir_cmd; vec_cmd; shapes_cmd; autovec_cmd; run_cmd; verify_rules_cmd ]))
