(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) on the simulated
   AVX-512 machine, then runs Bechamel micro-benchmarks of the compiler
   itself (pass time, shape analysis, rule verification, interpreter).

   Usage: dune exec bench/main.exe [--] [fast]
   "fast" skips the Bechamel wall-clock section. *)

let pr fmt = Fmt.pr fmt

let run_figures () =
  pr "Parsimony reproduction benchmark harness@.";
  pr "(simulated AVX-512-class machine; see lib/machine/cost.ml)@.";

  (* -- Figure 4 -- *)
  let f4 = Pharness.Figures.figure4 () in
  Pharness.Figures.pp_table Fmt.stdout
    ~title:"Figure 4: ispc benchmarks, speedup over LLVM auto-vectorization"
    ~unit:"speedup factor vs auto-vectorized serial C" f4;
  pr "summary: %s@." (Pharness.Figures.summary_figure4 f4);

  (* -- Figure 5 -- *)
  let f5 = Pharness.Figures.figure5 () in
  Pharness.Figures.pp_table Fmt.stdout
    ~title:
      "Figure 5: 72 Simd Library benchmarks, speedup over LLVM scalar \
       compilation"
    ~unit:"speedup factor vs scalar (vectorization disabled)" f5;
  pr "summary: %s@." (Pharness.Figures.summary_figure5 f5);

  (* -- code size (paper §6: 7x reduction) -- *)
  let cs = Pharness.Figures.code_size () in
  pr "@.== Code size: Parsimony source vs intrinsics-style implementation ==@.";
  pr "%-36s %12s %12s@." "kernel" "psim LoC" "hand instrs";
  List.iter
    (fun (n, p, h) ->
      match h with
      | Some h -> pr "%-36s %12d %12d@." n p h
      | None -> pr "%-36s %12d %12s@." n p "-")
    cs;
  pr "summary: %s@." (Pharness.Figures.summary_code_size cs);

  (* -- ablations (DESIGN.md design-choice index) -- *)
  let ab = Pharness.Figures.ablations () in
  Pharness.Figures.pp_table Fmt.stdout
    ~title:"Ablations: slowdown vs default Parsimony configuration"
    ~unit:"cycle ratio (>1 means the design choice matters)" ab;

  (* -- compile time (paper §4.2.2: online checks are cheap) -- *)
  pr "@.== Compile time ==@.%s@." (Pharness.Figures.compile_time_stats ())

(* -- Bechamel micro-benchmarks of the toolchain itself -- *)

let bechamel_benches () =
  let open Bechamel in
  let open Toolkit in
  let sample_kernel =
    List.find
      (fun (k : Psimdlib.Workload.kernel) -> k.kname = "gaussian_blur_3x3")
      Psimdlib.Registry.all
  in
  let compiled = Pfrontend.Lower.compile sample_kernel.psim_src in
  let spmd_func =
    List.find (fun f -> f.Pir.Func.spmd <> None) compiled.Pir.Func.funcs
  in
  let test_frontend =
    Test.make ~name:"frontend: parse+lower gaussian_blur_3x3"
      (Staged.stage (fun () ->
           ignore (Pfrontend.Lower.compile sample_kernel.psim_src)))
  in
  let test_shapes =
    Test.make ~name:"shape analysis (one SPMD function)"
      (Staged.stage (fun () -> ignore (Pshapes.Shapes.analyze spmd_func)))
  in
  let test_vectorize =
    Test.make ~name:"Parsimony pass (one SPMD function)"
      (Staged.stage (fun () ->
           ignore (Parsimony.Vectorizer.vectorize_func spmd_func)))
  in
  let test_rules =
    Test.make ~name:"offline rule verification (sampled)"
      (Staged.stage (fun () -> ignore (Psmt.Verify.check_all ())))
  in
  let test_interp =
    Test.make ~name:"simulator: one vectorized kernel execution"
      (Staged.stage (fun () ->
           ignore
             (Pharness.Runner.run sample_kernel
                (Pharness.Runner.ParsimonyImpl Parsimony.Options.default))))
  in
  let benchmark test =
    let instances = [ Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:30 ~quota:(Time.second 0.5) ~kde:None () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  pr "@.== Toolchain micro-benchmarks (Bechamel, wall clock) ==@.";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> pr "%-48s %12.1f ns/run@." name est
          | _ -> pr "%-48s (no estimate)@." name)
        results)
    [ test_frontend; test_shapes; test_vectorize; test_rules; test_interp ]

let () =
  let fast = Array.exists (fun a -> a = "fast") Sys.argv in
  run_figures ();
  if not fast then bechamel_benches ();
  pr "@.done.@."
