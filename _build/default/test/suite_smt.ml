(* Tests for the z3 stand-in: fact inference soundness (property-based)
   and the two-phase validation of the shape-transformation rules. *)

open Psmt

(* -- offline phase: every shipped rule verifies, and tampering with a
   precondition is caught -- *)

let test_all_rules_verify () =
  let reports = Verify.check_all () in
  List.iter
    (fun (r : Verify.report) ->
      match r.counterexample with
      | Some c -> Alcotest.failf "rule %s refuted: %s" r.rule c
      | None ->
          Alcotest.(check bool)
            (Fmt.str "rule %s fired at least once" r.rule)
            true (r.cases_checked > 0))
    reports

let test_checker_catches_broken_rule () =
  (* an unsound "rule": claims (b+o) >> 1 = (b >> 1) + (o >> 1)
     unconditionally (false when b and o have low bits that carry) *)
  let broken =
    {
      Rules.name = "lshr.broken";
      op = Pir.Instr.LShr;
      apply =
        (fun ~w a b ->
          match b.Rules.facts.Facts.const with
          | Some 1L ->
              Some (Array.map (fun o -> Pir.Ints.lshr w o 1L) a.Rules.offsets)
          | _ -> None);
    }
  in
  let report = Verify.check_rule broken in
  Alcotest.(check bool) "counterexample found" true (report.counterexample <> None)

(* -- facts: every abstract transfer must over-approximate the concrete
   operation (alignment and range soundness) -- *)

let ops =
  [
    Pir.Instr.Add; Pir.Instr.Sub; Pir.Instr.Mul; Pir.Instr.And; Pir.Instr.Or;
    Pir.Instr.Xor; Pir.Instr.Shl; Pir.Instr.LShr; Pir.Instr.UDiv;
    Pir.Instr.URem; Pir.Instr.UMin;
  ]

let prop_facts_sound =
  QCheck.Test.make ~name:"fact transfer over-approximates concrete values"
    ~count:2000
    QCheck.(triple (oneofl ops) (int_bound 255) (int_bound 255))
    (fun (op, a, b) ->
      let w = 8 in
      let a64 = Int64.of_int a and b64 = Int64.of_int b in
      let fa = Facts.of_const w a64 and fb = Facts.of_const w b64 in
      let fr = Facts.ibin op w fa fb in
      let concrete = Pir.Fold.ibin op w a64 b64 in
      (* alignment claim: concrete must be a multiple of 2^align *)
      let align_ok =
        fr.Facts.align >= 64
        || Int64.rem concrete (Int64.shift_left 1L (min 62 fr.Facts.align)) = 0L
      in
      (* range claim: concrete within [lo, hi] *)
      let range_ok =
        match fr.Facts.range with
        | None -> true
        | Some (lo, hi) ->
            Int64.unsigned_compare lo concrete <= 0
            && Int64.unsigned_compare concrete hi <= 0
      in
      (* const claim: exact *)
      let const_ok =
        match fr.Facts.const with None -> true | Some c -> c = concrete
      in
      align_ok && range_ok && const_ok)

let test_fact_helpers () =
  let f = Facts.of_const 8 48L in
  Alcotest.(check bool) "align of 48 is 4" true (Facts.align_at_least f 4);
  Alcotest.(check bool) "align of 48 is not 5" false (Facts.align_at_least f 5);
  Alcotest.(check bool) "48+208 doesn't fit u8" false (Facts.max_plus_fits f 208L 8);
  Alcotest.(check bool) "48+207 fits u8" true (Facts.max_plus_fits f 207L 8);
  let j = Facts.join (Facts.of_const 8 16L) (Facts.of_const 8 32L) in
  Alcotest.(check bool) "join keeps common alignment" true (Facts.align_at_least j 4);
  Alcotest.(check bool) "join drops constant" true (j.Facts.const = None)

(* online phase: rules fire only when their preconditions hold *)
let test_online_preconditions () =
  let w = 8 in
  let iota = Array.init 4 Int64.of_int in
  let aligned_base = { Rules.offsets = iota; facts = Facts.of_const w 64L } in
  let unaligned_base = { Rules.offsets = iota; facts = Facts.of_const w 65L } in
  let mask = { Rules.offsets = Array.make 4 0L; facts = Facts.of_const w 7L } in
  (match Rules.try_apply ~w Pir.Instr.And aligned_base mask with
  | Some ("and.low_mask", offs) ->
      Alcotest.(check bool) "offsets preserved" true (offs = iota)
  | other ->
      Alcotest.failf "expected and.low_mask, got %s"
        (match other with Some (n, _) -> n | None -> "nothing"));
  (match Rules.try_apply ~w Pir.Instr.And unaligned_base mask with
  | None -> ()
  | Some (n, _) -> Alcotest.failf "rule %s fired despite misaligned base" n);
  (* unknown base facts: must not fire either *)
  let unknown = { Rules.offsets = iota; facts = Facts.top } in
  match Rules.try_apply ~w Pir.Instr.And unknown mask with
  | None -> ()
  | Some (n, _) -> Alcotest.failf "rule %s fired with no facts" n

let suites =
  [
    ( "smt",
      [
        Alcotest.test_case "all shipped rules verify" `Quick test_all_rules_verify;
        Alcotest.test_case "checker refutes a broken rule" `Quick
          test_checker_catches_broken_rule;
        Alcotest.test_case "fact helpers" `Quick test_fact_helpers;
        Alcotest.test_case "online preconditions gate rules" `Quick
          test_online_preconditions;
        QCheck_alcotest.to_alcotest prop_facts_sound;
      ] );
  ]
