(* Tests for the machine substrate: memory, math library, scalar
   interpreter, vector operations, cost accounting, and the SPMD
   reference executor's synchronization semantics. *)

open Pir

let i64t = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal
let valt = Alcotest.testable Pmachine.Value.pp Pmachine.Value.equal

(* -- Memory -- *)

let test_memory_rw () =
  let m = Pmachine.Memory.create () in
  let a = Pmachine.Memory.alloc m 64 in
  Alcotest.(check bool) "aligned" true (a mod 64 = 0);
  Pmachine.Memory.store_scalar m Types.I16 a (Pmachine.Value.I 0xBEEFL);
  Alcotest.check valt "i16 roundtrip" (Pmachine.Value.I 0xBEEFL)
    (Pmachine.Memory.load_scalar m Types.I16 a);
  Pmachine.Memory.store_scalar m Types.F32 (a + 8) (Pmachine.Value.F 1.5);
  Alcotest.check valt "f32 roundtrip" (Pmachine.Value.F 1.5)
    (Pmachine.Memory.load_scalar m Types.F32 (a + 8));
  Pmachine.Memory.store_scalar m Types.I8 (a + 2) (Pmachine.Value.I 0x1FFL);
  Alcotest.check valt "i8 truncates" (Pmachine.Value.I 0xFFL)
    (Pmachine.Memory.load_scalar m Types.I8 (a + 2))

let test_memory_fault () =
  let m = Pmachine.Memory.create () in
  Alcotest.check_raises "null deref"
    (Pmachine.Memory.Fault "load of 4 bytes at address 0 out of bounds")
    (fun () -> ignore (Pmachine.Memory.load_scalar m Types.I32 0))

let test_memory_frames () =
  let m = Pmachine.Memory.create () in
  let mark = Pmachine.Memory.mark m in
  let _ = Pmachine.Memory.alloc m 1024 in
  Pmachine.Memory.release m mark;
  let a1 = Pmachine.Memory.alloc m 16 in
  Pmachine.Memory.release m mark;
  let a2 = Pmachine.Memory.alloc m 16 in
  Alcotest.(check int) "frame reuse" a1 a2

(* -- Interpreter on straight-line and branchy code -- *)

let run_fn f args =
  let m = Func.create_module "t" in
  Func.add_func m f;
  let t = Pmachine.Interp.create m in
  (Pmachine.Interp.run t f.Func.fname args, t)

let test_interp_arith () =
  let f = Func.create "arith" ~params:[ (0, Types.i32); (1, Types.i32) ] ~ret:Types.i32 in
  let b = Builder.create f in
  let s = Builder.add b (Instr.Var 0) (Instr.Var 1) in
  let p = Builder.mul b s (Instr.ci32 3) in
  Builder.ret b (Some p);
  let r, _ = run_fn f [ Pmachine.Value.I 4L; Pmachine.Value.I 5L ] in
  Alcotest.check valt "(4+5)*3" (Pmachine.Value.I 27L) r

let test_interp_branch_loop () =
  (* sum of 0..n-1 via loop *)
  let f = Func.create "sumn" ~params:[ (0, Types.i32) ] ~ret:Types.i32 in
  let b = Builder.create f in
  Builder.br b "h";
  let bh = Builder.add_block b "h" in
  Builder.position b bh;
  (* reserve ids by creating phis with self references patched later *)
  let i = Builder.phi b Types.i32 [ ("entry", Instr.ci32 0) ] in
  let s = Builder.phi b Types.i32 [ ("entry", Instr.ci32 0) ] in
  let c = Builder.icmp b Instr.Slt i (Instr.Var 0) in
  Builder.condbr b c "body" "x";
  let bb = Builder.add_block b "body" in
  Builder.position b bb;
  let s' = Builder.add b s i in
  let i' = Builder.add b i (Instr.ci32 1) in
  Builder.br b "h";
  let bx = Builder.add_block b "x" in
  Builder.position b bx;
  Builder.ret b (Some s);
  (* complete the phis *)
  bh.instrs <-
    List.map
      (fun inst ->
        match inst.Instr.op with
        | Instr.Phi [ ("entry", init) ] ->
            let upd = if Instr.equal_operand (Instr.Var inst.Instr.id) i then i' else s' in
            { inst with Instr.op = Instr.Phi [ ("entry", init); ("body", upd) ] }
        | _ -> inst)
      bh.instrs;
  Panalysis.Check.check_func f;
  let r, t = run_fn f [ Pmachine.Value.I 10L ] in
  Alcotest.check valt "sum 0..9" (Pmachine.Value.I 45L) r;
  Alcotest.(check bool) "cycles accumulated" true (t.Pmachine.Interp.stats.cycles > 0.0)

let test_interp_vector_ops () =
  let f = Func.create "vec" ~params:[ (0, Types.Ptr Types.I32) ] ~ret:Types.i32 in
  let b = Builder.create f in
  let v = Builder.vload b (Instr.Var 0) 4 in
  let w = Builder.ibin b Instr.Mul v (Instr.cvec Types.I32 [| 1L; 2L; 3L; 4L |]) in
  let r = Builder.reduce b Instr.RAdd w in
  Builder.ret b (Some r);
  let m = Func.create_module "t" in
  Func.add_func m f;
  let t = Pmachine.Interp.create m in
  let addr =
    Pmachine.Memory.alloc_array t.Pmachine.Interp.mem Types.I32
      (Array.map (fun x -> Pmachine.Value.I x) [| 10L; 20L; 30L; 40L |])
  in
  let r = Pmachine.Interp.run t "vec" [ Pmachine.Value.I (Int64.of_int addr) ] in
  (* 10*1 + 20*2 + 30*3 + 40*4 = 300 *)
  Alcotest.check valt "dot" (Pmachine.Value.I 300L) r

let test_interp_masked_store () =
  let f = Func.create "mst" ~params:[ (0, Types.Ptr Types.I32) ] ~ret:Types.Void in
  let b = Builder.create f in
  let v = Builder.ins b (Types.Vec (Types.I32, 4)) (Instr.Splat (Instr.ci32 7, 4)) in
  let mask = Instr.cvec Types.I1 [| 1L; 0L; 1L; 0L |] in
  Builder.vstore b ~mask v (Instr.Var 0);
  Builder.ret_void b;
  let m = Func.create_module "t" in
  Func.add_func m f;
  let t = Pmachine.Interp.create m in
  let addr =
    Pmachine.Memory.alloc_array t.Pmachine.Interp.mem Types.I32
      (Array.make 4 (Pmachine.Value.I 1L))
  in
  ignore (Pmachine.Interp.run t "mst" [ Pmachine.Value.I (Int64.of_int addr) ]);
  let out = Pmachine.Memory.read_array t.Pmachine.Interp.mem Types.I32 addr 4 in
  Alcotest.check (Alcotest.array valt) "masked lanes untouched"
    [| Pmachine.Value.I 7L; Pmachine.Value.I 1L; Pmachine.Value.I 7L; Pmachine.Value.I 1L |]
    out

let test_interp_gather_cost_exceeds_packed () =
  let mk use_gather =
    let f =
      Func.create (if use_gather then "g" else "p")
        ~params:[ (0, Types.Ptr Types.F32) ] ~ret:Types.Void
    in
    let b = Builder.create f in
    (if use_gather then
       let idx = Instr.cvec Types.I64 (Array.init 16 Int64.of_int) in
       ignore (Builder.gather b (Instr.Var 0) idx)
     else ignore (Builder.vload b (Instr.Var 0) 16));
    Builder.ret_void b;
    f
  in
  let run f =
    let m = Func.create_module "t" in
    Func.add_func m f;
    let t = Pmachine.Interp.create m in
    let addr =
      Pmachine.Memory.alloc_array t.Pmachine.Interp.mem Types.F32
        (Array.make 16 (Pmachine.Value.F 0.))
    in
    ignore (Pmachine.Interp.run t f.Func.fname [ Pmachine.Value.I (Int64.of_int addr) ]);
    t.Pmachine.Interp.stats.cycles
  in
  let cg = run (mk true) and cp = run (mk false) in
  Alcotest.(check bool)
    (Fmt.str "gather (%g) much slower than packed (%g)" cg cp)
    true
    (cg > 3.0 *. cp)

let test_mathlib () =
  Alcotest.check valt "pow" (Pmachine.Value.F 8.)
    (Pmachine.Mathlib.eval "math.pow.f64" [ Pmachine.Value.F 2.; Pmachine.Value.F 3. ]);
  match Pmachine.Mathlib.eval "sleef.sqrt.f32" [ Pmachine.Value.VF [| 4.0; 9.0 |] ] with
  | Pmachine.Value.VF [| a; b |] ->
      Alcotest.(check (float 1e-6)) "sqrt4" 2.0 a;
      Alcotest.(check (float 1e-6)) "sqrt9" 3.0 b
  | v -> Alcotest.failf "unexpected %a" Pmachine.Value.pp v

(* -- SPMD reference executor -- *)

(* SPMD function: a[i] = lane; then sync; then b[i] = a[(i+1) % G] read
   through memory — the Listing 3 pattern (explicit synchronization). *)
let build_spmd_listing3 gang =
  let f =
    Func.create "spmd3"
      ~params:[ (0, Types.Ptr Types.I32); (1, Types.Ptr Types.I32); (2, Types.i64); (3, Types.i64) ]
      ~ret:Types.Void
      ~spmd:{ Func.gang_size = gang; partial = false }
  in
  let b = Builder.create f in
  let lane = Builder.call b Types.i64 Intrinsics.lane_num [] in
  let p = Builder.gep b (Instr.Var 0) lane in
  let lv = Builder.cast b Instr.Trunc lane Types.i32 in
  Builder.store b lv p;
  Builder.call_unit b Intrinsics.gang_sync [];
  let nxt = Builder.add b lane (Instr.ci64 1) in
  let nxt = Builder.ibin b Instr.URem nxt (Instr.ci64 gang) in
  let p2 = Builder.gep b (Instr.Var 0) nxt in
  let v = Builder.load b p2 in
  let q = Builder.gep b (Instr.Var 1) lane in
  Builder.store b v q;
  Builder.ret_void b;
  f

let test_spmd_sync_through_memory () =
  let gang = 8 in
  let f = build_spmd_listing3 gang in
  Panalysis.Check.check_func f;
  let m = Func.create_module "t" in
  Func.add_func m f;
  let t = Pmachine.Interp.create m in
  let mem = t.Pmachine.Interp.mem in
  let a = Pmachine.Memory.alloc mem (4 * gang) in
  let bb = Pmachine.Memory.alloc mem (4 * gang) in
  ignore
    (Pmachine.Interp.run t "spmd3"
       [
         Pmachine.Value.I (Int64.of_int a);
         Pmachine.Value.I (Int64.of_int bb);
         Pmachine.Value.I 0L;
         Pmachine.Value.I (Int64.of_int gang);
       ]);
  let out = Pmachine.Memory.read_array mem Types.I32 bb gang in
  Array.iteri
    (fun i v ->
      Alcotest.check valt
        (Fmt.str "lane %d reads neighbour" i)
        (Pmachine.Value.I (Int64.of_int ((i + 1) mod gang)))
        v)
    out

(* Without the gang_sync, the round-robin reference scheduler runs each
   thread to completion in turn, so lane i reads a stale neighbour value:
   the data race of Listing 1 made observable. *)
let test_spmd_race_without_sync () =
  let gang = 8 in
  let f = build_spmd_listing3 gang in
  (* strip the sync call *)
  List.iter
    (fun (bl : Func.block) ->
      bl.instrs <-
        List.filter
          (fun i ->
            match i.Instr.op with
            | Instr.Call (n, _) -> n <> Intrinsics.gang_sync
            | _ -> true)
          bl.instrs)
    f.Func.blocks;
  let m = Func.create_module "t" in
  Func.add_func m f;
  let t = Pmachine.Interp.create m in
  let mem = t.Pmachine.Interp.mem in
  let a = Pmachine.Memory.alloc mem (4 * gang) in
  let bb = Pmachine.Memory.alloc mem (4 * gang) in
  ignore
    (Pmachine.Interp.run t "spmd3"
       [
         Pmachine.Value.I (Int64.of_int a);
         Pmachine.Value.I (Int64.of_int bb);
         Pmachine.Value.I 0L;
         Pmachine.Value.I (Int64.of_int gang);
       ]);
  let out = Pmachine.Memory.read_array mem Types.I32 bb 1 in
  (* thread 0 runs to completion first and reads a[1] before thread 1
     wrote it: observes 0, not 1 *)
  Alcotest.check valt "lane 0 observes stale value" (Pmachine.Value.I 0L) out.(0)

let test_spmd_shuffle () =
  let gang = 8 in
  let f =
    Func.create "shuf"
      ~params:[ (0, Types.Ptr Types.I32); (1, Types.i64); (2, Types.i64) ]
      ~ret:Types.Void
      ~spmd:{ Func.gang_size = gang; partial = false }
  in
  let b = Builder.create f in
  let lane = Builder.call b Types.i64 Intrinsics.lane_num [] in
  let v = Builder.mul b lane (Instr.ci64 10) in
  let src = Builder.xor b lane (Instr.ci64 1) in
  (* butterfly exchange: lane l gets value of lane l^1 *)
  let got = Builder.call b Types.i64 Intrinsics.shuffle [ v; src ] in
  let p = Builder.gep b (Instr.Var 0) lane in
  let g32 = Builder.cast b Instr.Trunc got Types.i32 in
  Builder.store b g32 p;
  Builder.ret_void b;
  let m = Func.create_module "t" in
  Func.add_func m f;
  let t = Pmachine.Interp.create m in
  let mem = t.Pmachine.Interp.mem in
  let a = Pmachine.Memory.alloc mem (4 * gang) in
  ignore
    (Pmachine.Interp.run t "shuf"
       [ Pmachine.Value.I (Int64.of_int a); Pmachine.Value.I 0L; Pmachine.Value.I (Int64.of_int gang) ]);
  let out = Pmachine.Memory.read_array mem Types.I32 a gang in
  Array.iteri
    (fun i v ->
      Alcotest.check valt (Fmt.str "lane %d" i)
        (Pmachine.Value.I (Int64.of_int ((i lxor 1) * 10)))
        v)
    out

(* Divergent sync: half the gang syncs, half does not -> the executor
   must report the weak-forward-progress violation. *)
let test_spmd_divergent_sync_detected () =
  let gang = 4 in
  let f =
    Func.create "div"
      ~params:[ (0, Types.i64); (1, Types.i64) ]
      ~ret:Types.Void
      ~spmd:{ Func.gang_size = gang; partial = false }
  in
  let b = Builder.create f in
  let lane = Builder.call b Types.i64 Intrinsics.lane_num [] in
  let c = Builder.icmp b Instr.Ult lane (Instr.ci64 2) in
  Builder.condbr b c "s" "n";
  let bs = Builder.add_block b "s" in
  Builder.position b bs;
  Builder.call_unit b Intrinsics.gang_sync [];
  Builder.br b "j";
  let bn = Builder.add_block b "n" in
  Builder.position b bn;
  Builder.br b "j";
  let bj = Builder.add_block b "j" in
  Builder.position b bj;
  Builder.ret_void b;
  let m = Func.create_module "t" in
  Func.add_func m f;
  let t = Pmachine.Interp.create m in
  match Pmachine.Interp.run t "div" [ Pmachine.Value.I 0L; Pmachine.Value.I 4L ] with
  | exception Pmachine.Interp.Trap msg ->
      Alcotest.(check bool) "mentions divergence" true
        (Astring_contains.contains msg "divergent")
  | _ -> Alcotest.fail "divergent sync not detected"

(* Partial gangs: only threads below num_threads run. *)
let test_spmd_partial_gang () =
  let gang = 8 in
  let f =
    Func.create "part"
      ~params:[ (0, Types.Ptr Types.I32); (1, Types.i64); (2, Types.i64) ]
      ~ret:Types.Void
      ~spmd:{ Func.gang_size = gang; partial = true }
  in
  let b = Builder.create f in
  let lane = Builder.call b Types.i64 Intrinsics.lane_num [] in
  let p = Builder.gep b (Instr.Var 0) lane in
  Builder.store b (Instr.ci32 1) p;
  Builder.ret_void b;
  let m = Func.create_module "t" in
  Func.add_func m f;
  let t = Pmachine.Interp.create m in
  let mem = t.Pmachine.Interp.mem in
  let a =
    Pmachine.Memory.alloc_array mem Types.I32 (Array.make gang (Pmachine.Value.I 0L))
  in
  (* gang 0 of a 5-thread region: only lanes 0..4 active *)
  ignore
    (Pmachine.Interp.run t "part"
       [ Pmachine.Value.I (Int64.of_int a); Pmachine.Value.I 0L; Pmachine.Value.I 5L ]);
  let out = Pmachine.Memory.read_array mem Types.I32 a gang in
  Array.iteri
    (fun i v ->
      Alcotest.check valt (Fmt.str "lane %d" i)
        (Pmachine.Value.I (if i < 5 then 1L else 0L))
        v)
    out

let suites =
  [
    ( "machine.memory",
      [
        Alcotest.test_case "read/write" `Quick test_memory_rw;
        Alcotest.test_case "faults" `Quick test_memory_fault;
        Alcotest.test_case "frames" `Quick test_memory_frames;
      ] );
    ( "machine.interp",
      [
        Alcotest.test_case "arith" `Quick test_interp_arith;
        Alcotest.test_case "branch+loop" `Quick test_interp_branch_loop;
        Alcotest.test_case "vector ops" `Quick test_interp_vector_ops;
        Alcotest.test_case "masked store" `Quick test_interp_masked_store;
        Alcotest.test_case "gather cost" `Quick test_interp_gather_cost_exceeds_packed;
        Alcotest.test_case "mathlib" `Quick test_mathlib;
      ] );
    ( "machine.spmd_ref",
      [
        Alcotest.test_case "sync through memory (Listing 3)" `Quick test_spmd_sync_through_memory;
        Alcotest.test_case "race without sync (Listing 1)" `Quick test_spmd_race_without_sync;
        Alcotest.test_case "shuffle exchange" `Quick test_spmd_shuffle;
        Alcotest.test_case "divergent sync detected" `Quick test_spmd_divergent_sync_detected;
        Alcotest.test_case "partial gang" `Quick test_spmd_partial_gang;
      ] );
  ]
