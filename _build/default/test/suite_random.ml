(* Property-based differential testing: generate random PsimC SPMD
   kernels (arithmetic, divergent conditionals, bounded divergent loops,
   gang shuffles) and require that the vectorized execution matches the
   SPMD reference executor bit-for-bit on the output buffer — for the
   default configuration and for every ablation configuration. *)

open QCheck

(* -- random program generation -- *)

(* expressions over in-scope i32 variables; sizes kept small so values
   stay meaningful and loops stay bounded *)
let rec gen_expr vars depth st =
  let leaf () =
    match Gen.int_bound 2 st with
    | 0 -> string_of_int (Gen.int_range (-20) 20 st)
    | _ -> List.nth vars (Gen.int_bound (List.length vars - 1) st)
  in
  if depth = 0 then leaf ()
  else
    match Gen.int_bound 8 st with
    | 0 | 1 -> leaf ()
    | 2 -> Fmt.str "(%s + %s)" (gen_expr vars (depth - 1) st) (gen_expr vars (depth - 1) st)
    | 3 -> Fmt.str "(%s - %s)" (gen_expr vars (depth - 1) st) (gen_expr vars (depth - 1) st)
    | 4 -> Fmt.str "(%s * %d)" (gen_expr vars (depth - 1) st) (Gen.int_range (-4) 4 st)
    | 5 -> Fmt.str "min(%s, %s)" (gen_expr vars (depth - 1) st) (gen_expr vars (depth - 1) st)
    | 6 -> Fmt.str "max(%s, %s)" (gen_expr vars (depth - 1) st) (gen_expr vars (depth - 1) st)
    | 7 -> Fmt.str "(%s >> %d)" (gen_expr vars (depth - 1) st) (Gen.int_bound 3 st)
    | _ ->
        Fmt.str "(%s ^ %s)" (gen_expr vars (depth - 1) st) (gen_expr vars (depth - 1) st)

let gen_cond vars st =
  let op = List.nth [ "<"; ">"; "<="; ">="; "=="; "!=" ] (Gen.int_bound 5 st) in
  Fmt.str "%s %s %s" (gen_expr vars 1 st) op (gen_expr vars 1 st)

let fresh_var =
  let n = ref 0 in
  fun () ->
    incr n;
    Fmt.str "t%d" !n

(* statements; [vars] are assignable i32 locals in scope.  Horizontal
   operations (shuffle, sync) are only generated at convergent points
   ([div] false): under divergent control they are undefined behavior in
   the programming model, which the reference executor detects. *)
let rec gen_stmts ?(div = false) vars budget st : string list * string list =
  if budget <= 0 then ([], vars)
  else
    let choice = Gen.int_bound 9 st in
    let choice = if div && (choice = 7 || choice = 8) then 0 else choice in
    let stmt, vars' =
      match choice with
      | 0 | 1 ->
          let v = fresh_var () in
          ([ Fmt.str "int32 %s = %s;" v (gen_expr vars 2 st) ], v :: vars)
      | 2 | 3 ->
          (* never reassign loop counters (would unbound the loop) *)
          let assignable = List.filter (fun v -> v.[0] <> 'c') vars in
          let v = List.nth assignable (Gen.int_bound (List.length assignable - 1) st) in
          ([ Fmt.str "%s = %s;" v (gen_expr vars 2 st) ], vars)
      | 4 | 5 ->
          (* divergent conditional *)
          let t, _ = gen_stmts ~div:true vars (budget / 2) st in
          let e, _ = gen_stmts ~div:true vars (budget / 2) st in
          ( [ Fmt.str "if (%s) {" (gen_cond vars st) ]
            @ t
            @ [ "} else {" ]
            @ e
            @ [ "}" ],
            vars )
      | 6 ->
          (* bounded divergent loop: trip count depends on lane values *)
          let c = "c" ^ fresh_var () in
          let body, _ = gen_stmts ~div:true (c :: vars) (budget / 2) st in
          ( [
              Fmt.str "int32 %s = min(max(%s, 0 - 8), 8);" c (gen_expr vars 1 st);
              Fmt.str "while (%s > 0) {" c;
            ]
            @ body
            @ [ Fmt.str "%s = %s - 1;" c c; "}" ],
            vars )
      | 7 ->
          (* gang shuffle: read another lane's value *)
          let v = fresh_var () in
          let src = Fmt.str "(uint64)(%s & 7)" (gen_expr vars 1 st) in
          ( [
              Fmt.str "int32 %s = psim_shuffle(%s, %s);" v
                (List.nth vars (Gen.int_bound (List.length vars - 1) st))
                src;
            ],
            v :: vars )
      | 8 ->
          ([ "psim_gang_sync();" ], vars)
      | _ ->
          (* ternary select *)
          let v = fresh_var () in
          ( [
              Fmt.str "int32 %s = %s ? %s : %s;" v (gen_cond vars st)
                (gen_expr vars 1 st) (gen_expr vars 1 st);
            ],
            v :: vars )
    in
    let rest, vars'' = gen_stmts ~div vars' (budget - 1) st in
    (stmt @ rest, vars'')

let gen_program st =
  let body, vars = gen_stmts [ "x"; "li" ] (Gen.int_range 3 8 st) st in
  let result = gen_expr vars 2 st in
  Fmt.str
    {|
void k(int32* a, int32* b, int64 n) {
  psim gang_size(8) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    int32 x = a[i];
    int32 li = (int32)psim_lane_num();
%s
    b[i] = %s;
  }
}
|}
    (String.concat "\n    " body)
    result

(* -- differential execution -- *)

let n_threads = 24 (* three gangs; not a multiple to exercise the tail *)

let run_program ?opts src =
  let m = Pfrontend.Lower.compile src in
  (match opts with
  | Some opts ->
      ignore (Parsimony.Vectorizer.run_module ~opts m);
      Panalysis.Check.check_module m;
      Parsimony.Simplify.run_module m
  | None -> ());
  let t = Pmachine.Interp.create m in
  let mem = t.Pmachine.Interp.mem in
  let a =
    Pmachine.Memory.alloc_array mem Pir.Types.I32
      (Array.init n_threads (fun i ->
           Pmachine.Value.I (Int64.of_int (((i * 37) mod 41) - 13))))
  in
  let b =
    Pmachine.Memory.alloc_array mem Pir.Types.I32
      (Array.make n_threads (Pmachine.Value.I 0L))
  in
  ignore
    (Pmachine.Interp.run t "k"
       [
         Pmachine.Value.I (Int64.of_int a);
         Pmachine.Value.I (Int64.of_int b);
         Pmachine.Value.I (Int64.of_int n_threads);
       ]);
  Pmachine.Memory.read_array mem Pir.Types.I32 b n_threads

let ablation_opts =
  [
    ("default", Parsimony.Options.default);
    ("ispc", Parsimony.Options.ispc);
    ("no-shapes", { Parsimony.Options.default with shape_analysis = false });
    ("no-stride-shuffle", { Parsimony.Options.default with stride_shuffle_bound = 0 });
    ("linearize-uniform", { Parsimony.Options.default with uniform_branches = false });
    ("boscc", { Parsimony.Options.default with boscc = true });
  ]

let prop_random_kernel =
  Test.make ~name:"random SPMD kernels: reference = vectorized (all configs)"
    ~count:150
    (QCheck.make ~print:(fun s -> s) gen_program)
    (fun src ->
      let expected = run_program src in
      List.for_all
        (fun (label, opts) ->
          let got = run_program ~opts src in
          let ok = Array.for_all2 Pmachine.Value.equal expected got in
          if not ok then
            QCheck.Test.fail_reportf "config %s disagrees on:@.%s@.ref: %a@.got: %a"
              label src
              Fmt.(array ~sep:(any " ") Pmachine.Value.pp)
              expected
              Fmt.(array ~sep:(any " ") Pmachine.Value.pp)
              got
          else true)
        ablation_opts)

let suites =
  [ ("vectorizer.random", [ QCheck_alcotest.to_alcotest prop_random_kernel ]) ]
