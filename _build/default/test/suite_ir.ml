(* Unit and property tests for the PIR substrate: integer semantics,
   types, builder/verifier, and CFG analyses. *)

open Pir

let i64t = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

(* -- Ints: canonical narrow-width arithmetic -- *)

let test_norm_sext () =
  Alcotest.check i64t "norm 8 256" 0L (Ints.norm 8 256L);
  Alcotest.check i64t "norm 8 255" 255L (Ints.norm 8 255L);
  Alcotest.check i64t "sext 8 0xFF" (-1L) (Ints.sext 8 0xFFL);
  Alcotest.check i64t "sext 8 0x7F" 127L (Ints.sext 8 0x7FL);
  Alcotest.check i64t "sext 16 0x8000" (-32768L) (Ints.sext 16 0x8000L);
  Alcotest.check i64t "zext identity" 200L (Ints.zext 8 200L)

let test_sat () =
  Alcotest.check i64t "uadd_sat 8 saturates" 255L (Ints.uadd_sat 8 200L 100L);
  Alcotest.check i64t "uadd_sat 8 plain" 150L (Ints.uadd_sat 8 100L 50L);
  Alcotest.check i64t "usub_sat 8 floor" 0L (Ints.usub_sat 8 50L 100L);
  Alcotest.check i64t "sadd_sat 8 pos" 127L (Ints.sadd_sat 8 100L 100L);
  Alcotest.check i64t "sadd_sat 8 neg" 128L (Ints.sadd_sat 8 (Ints.norm 8 (-100L)) (Ints.norm 8 (-100L)));
  Alcotest.check i64t "ssub_sat 8" 127L (Ints.ssub_sat 8 100L (Ints.norm 8 (-100L)))

let test_misc_ops () =
  Alcotest.check i64t "avgr_u rounding" 2L (Ints.avgr_u 8 1L 2L);
  Alcotest.check i64t "avgr_u 255 255" 255L (Ints.avgr_u 8 255L 255L);
  Alcotest.check i64t "abs_diff_u" 55L (Ints.abs_diff_u 8 200L 145L);
  Alcotest.check i64t "abs_diff_u sym" 55L (Ints.abs_diff_u 8 145L 200L);
  Alcotest.check i64t "mulhi_u 16" 1L (Ints.mulhi_u 16 0x100L 0x100L);
  Alcotest.check i64t "mulhi_s neg" (Ints.norm 16 (-1L))
    (Ints.mulhi_s 16 (Ints.norm 16 (-2L)) 0x4000L);
  Alcotest.check i64t "clz 8" 4L (Ints.clz 8 0x0FL);
  Alcotest.check i64t "ctz 8" 2L (Ints.ctz 8 0x0CL);
  Alcotest.check i64t "popcnt" 4L (Ints.popcnt 8 0xF0L);
  Alcotest.check i64t "udiv by zero defined" 255L (Ints.udiv 8 7L 0L)

let test_shifts () =
  Alcotest.check i64t "shl" 0xF0L (Ints.shl 8 0x0FL 4L);
  Alcotest.check i64t "shl overflow drops" 0L (Ints.shl 8 0x80L 1L);
  Alcotest.check i64t "lshr" 0x0FL (Ints.lshr 8 0xF0L 4L);
  Alcotest.check i64t "ashr sign" 0xFFL (Ints.ashr 8 0x80L 7L);
  Alcotest.check i64t "ashr wide shift" 0xFFL (Ints.ashr 8 0x80L 63L)

(* round-trip property: norm/sext are inverses on the value range *)
let prop_sext_norm =
  QCheck.Test.make ~name:"sext then norm is identity on canonical values"
    ~count:500
    (QCheck.pair (QCheck.oneofl [ 8; 16; 32 ]) QCheck.int64)
    (fun (w, x) ->
      let c = Ints.norm w x in
      Ints.norm w (Ints.sext w c) = c)

let prop_sat_bounds =
  QCheck.Test.make ~name:"uadd_sat within range" ~count:500
    (QCheck.triple (QCheck.oneofl [ 8; 16 ]) QCheck.int64 QCheck.int64)
    (fun (w, a, b) ->
      let r = Ints.uadd_sat w (Ints.norm w a) (Ints.norm w b) in
      Int64.unsigned_compare r (Ints.max_unsigned w) <= 0)

let prop_mulhi_u_16 =
  QCheck.Test.make ~name:"mulhi_u matches wide multiply at 16 bits" ~count:500
    (QCheck.pair QCheck.int64 QCheck.int64)
    (fun (a, b) ->
      let a = Ints.norm 16 a and b = Ints.norm 16 b in
      Ints.mulhi_u 16 a b = Int64.shift_right_logical (Int64.mul a b) 16)

(* -- Types -- *)

let test_types () =
  Alcotest.(check int) "bits of <16 x i32>" 512 (Types.bits (Types.Vec (Types.I32, 16)));
  Alcotest.(check int) "lanes of scalar" 1 (Types.lanes Types.i32);
  Alcotest.(check bool) "widen ptr" true
    (Types.equal (Types.widen (Types.Ptr Types.I8) 4) (Types.Vec (Types.I64, 4)));
  Alcotest.(check string) "pp vec" "<8 x f32>" (Types.to_string (Types.Vec (Types.F32, 8)));
  Alcotest.(check string) "pp ptr" "i8*" (Types.to_string (Types.Ptr Types.I8))

(* -- Builder + Verifier -- *)

(* A small function: f(a, b) = if a < b then a + b else a - b *)
let build_branchy () =
  let f =
    Func.create "branchy"
      ~params:[ (0, Types.i32); (1, Types.i32) ]
      ~ret:Types.i32
  in
  let b = Builder.create f in
  let cond = Builder.icmp b Instr.Slt (Instr.Var 0) (Instr.Var 1) in
  Builder.condbr b cond "then" "else";
  let bt = Builder.add_block b "then" in
  Builder.position b bt;
  let s = Builder.add b (Instr.Var 0) (Instr.Var 1) in
  Builder.br b "join";
  let be = Builder.add_block b "else" in
  Builder.position b be;
  let d = Builder.sub b (Instr.Var 0) (Instr.Var 1) in
  Builder.br b "join";
  let bj = Builder.add_block b "join" in
  Builder.position b bj;
  let r = Builder.phi b Types.i32 [ ("then", s); ("else", d) ] in
  Builder.ret b (Some r);
  f

let test_builder_verifier () =
  let f = build_branchy () in
  (match Verifier.verify_func f with
  | Ok () -> ()
  | Error es -> Alcotest.failf "verifier rejected: %s" (Verifier.errors_to_string es));
  Panalysis.Check.check_func f

let test_verifier_rejects () =
  let f = Func.create "bad" ~params:[ (0, Types.i32) ] ~ret:Types.i32 in
  let b = Builder.create f in
  (* type mismatch: i32 + f32 *)
  let x = Builder.ins b Types.i32 (Instr.Ibin (Instr.Add, Instr.Var 0, Instr.cf32 1.0)) in
  Builder.ret b (Some x);
  match Verifier.verify_func f with
  | Ok () -> Alcotest.fail "verifier accepted ill-typed add"
  | Error _ -> ()

let test_verifier_rejects_bad_label () =
  let f = Func.create "badlbl" ~params:[] ~ret:Types.Void in
  let b = Builder.create f in
  Builder.br b "nowhere";
  match Verifier.verify_func f with
  | Ok () -> Alcotest.fail "verifier accepted dangling label"
  | Error _ -> ()

let test_printer_roundtrip_shape () =
  let f = build_branchy () in
  let s = Printer.func_to_string f in
  Alcotest.(check bool) "mentions phi" true
    (Astring_contains.contains s "phi");
  Alcotest.(check bool) "mentions icmp slt" true
    (Astring_contains.contains s "icmp slt")

(* -- CFG / dominators / loops / regions -- *)

let build_loop () =
  (* for (i = 0; i < n; i++) sum += i; return sum *)
  let f = Func.create "looper" ~params:[ (0, Types.i32) ] ~ret:Types.i32 in
  let b = Builder.create f in
  Builder.br b "header";
  let bh = Builder.add_block b "header" in
  Builder.position b bh;
  let i = Builder.phi b Types.i32 [ ("entry", Instr.ci32 0); ("latch", Instr.Var 99) ] in
  let sum = Builder.phi b Types.i32 [ ("entry", Instr.ci32 0); ("latch", Instr.Var 98) ] in
  let c = Builder.icmp b Instr.Slt i (Instr.Var 0) in
  Builder.condbr b c "latch" "exit";
  let bl = Builder.add_block b "latch" in
  Builder.position b bl;
  let sum' = Builder.add b sum i in
  let i' = Builder.add b i (Instr.ci32 1) in
  Builder.br b "header";
  let bx = Builder.add_block b "exit" in
  Builder.position b bx;
  Builder.ret b (Some sum);
  (* patch phi placeholders with real ids *)
  let patch inst =
    match inst.Instr.op with
    | Instr.Phi inc ->
        let inc =
          List.map
            (fun (l, v) ->
              match v with
              | Instr.Var 99 -> (l, i')
              | Instr.Var 98 -> (l, sum')
              | _ -> (l, v))
            inc
        in
        { inst with Instr.op = Instr.Phi inc }
    | _ -> inst
  in
  bh.instrs <- List.map patch bh.instrs;
  f

let test_dominators () =
  let f = build_branchy () in
  let cfg = Panalysis.Cfg.build f in
  let dom = Panalysis.Dom.compute cfg in
  Alcotest.(check bool) "entry dominates join" true
    (Panalysis.Dom.dominates dom "entry" "join");
  Alcotest.(check bool) "then does not dominate join" false
    (Panalysis.Dom.dominates dom "then" "join");
  let pdom = Panalysis.Dom.compute_post cfg in
  Alcotest.(check (option string)) "join postdominates entry" (Some "join")
    (Panalysis.Dom.ipostdom pdom "entry")

let test_loops () =
  let f = build_loop () in
  Panalysis.Check.check_func f;
  let cfg = Panalysis.Cfg.build f in
  let loops = Panalysis.Loops.find cfg in
  Alcotest.(check int) "one loop" 1 (List.length loops.loops);
  let l = List.hd loops.loops in
  Alcotest.(check string) "header" "header" l.header;
  Alcotest.(check bool) "latch in body" true (List.mem "latch" l.body);
  let ivs = Panalysis.Loops.induction_vars cfg l in
  Alcotest.(check int) "one constant-step induction var" 1
    (List.length (List.filter (fun iv -> iv.Panalysis.Loops.step = 1L) ivs))

let test_regions_if () =
  let f = build_branchy () in
  let rs = Panalysis.Regions.of_func f in
  match rs with
  | [ Panalysis.Regions.Basic _; Panalysis.Regions.If { join; then_; else_; _ }; Panalysis.Regions.Basic _ ] ->
      Alcotest.(check string) "join" "join" join;
      Alcotest.(check int) "then blocks" 1 (List.length then_);
      Alcotest.(check int) "else blocks" 1 (List.length else_)
  | _ -> Alcotest.failf "unexpected region shape (%d regions)" (List.length rs)

let test_regions_loop () =
  let f = build_loop () in
  let rs = Panalysis.Regions.of_func f in
  match rs with
  | [ Panalysis.Regions.Basic _; Panalysis.Regions.Loop { exit; body; _ }; Panalysis.Regions.Basic _ ] ->
      Alcotest.(check string) "exit" "exit" exit;
      Alcotest.(check int) "body regions" 1 (List.length body)
  | _ -> Alcotest.failf "unexpected region shape (%d regions)" (List.length rs)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "ir.ints",
      [
        Alcotest.test_case "norm/sext" `Quick test_norm_sext;
        Alcotest.test_case "saturating" `Quick test_sat;
        Alcotest.test_case "misc ops" `Quick test_misc_ops;
        Alcotest.test_case "shifts" `Quick test_shifts;
      ]
      @ qsuite [ prop_sext_norm; prop_sat_bounds; prop_mulhi_u_16 ] );
    ( "ir.core",
      [
        Alcotest.test_case "types" `Quick test_types;
        Alcotest.test_case "builder+verifier accept" `Quick test_builder_verifier;
        Alcotest.test_case "verifier rejects ill-typed" `Quick test_verifier_rejects;
        Alcotest.test_case "verifier rejects bad label" `Quick test_verifier_rejects_bad_label;
        Alcotest.test_case "printer output" `Quick test_printer_roundtrip_shape;
      ] );
    ( "ir.analysis",
      [
        Alcotest.test_case "dominators" `Quick test_dominators;
        Alcotest.test_case "loops" `Quick test_loops;
        Alcotest.test_case "regions: if" `Quick test_regions_if;
        Alcotest.test_case "regions: loop" `Quick test_regions_loop;
      ] );
  ]
