(* Tiny substring check helper for tests. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0
