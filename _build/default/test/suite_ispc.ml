(* Verify the 7 ispc benchmarks across scalar / autovec / Parsimony /
   ispc-mode implementations. *)

let verify_kernel (k : Psimdlib.Workload.kernel) () =
  try Pharness.Runner.verify k
  with Failure msg -> Alcotest.fail msg

let suites =
  [
    ( "ispc.verify",
      List.map
        (fun (k : Psimdlib.Workload.kernel) ->
          Alcotest.test_case k.kname `Quick (verify_kernel k))
        Pispc.Suite.all );
  ]
