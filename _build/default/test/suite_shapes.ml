(* Focused tests for shape analysis: classification of the paper's
   §4.2.2 examples, rule-driven indexed propagation, divergence forcing,
   and the SoA alloca layout. *)

open Pir

let compile_spmd src =
  let m = Pfrontend.Lower.compile src in
  List.find (fun f -> f.Func.spmd <> None) m.Func.funcs

let shapes_of src =
  let f = compile_spmd src in
  let info = Pshapes.Shapes.analyze f in
  (f, info)

(* find the shape of the value stored to out[...] (the last store's
   value operand) *)
let stored_shape (f : Func.t) info =
  let result = ref None in
  Func.iter_instrs f (fun _ i ->
      match i.Instr.op with
      | Instr.Store (v, _) -> result := Some (Pshapes.Shapes.shape_of info v)
      | _ -> ());
  Option.get !result

let check_uniform what s =
  Alcotest.(check bool) (what ^ " is uniform") true (Pshapes.Shapes.is_uniform s)

let check_stride what expected s =
  match Pshapes.Shapes.stride_of s with
  | Some d -> Alcotest.(check int64) (what ^ " stride") expected d
  | None -> Alcotest.failf "%s is not strided (%a)" what Pshapes.Shapes.pp_shape s

let check_varying what s =
  Alcotest.(check bool) (what ^ " is varying") true (not (Pshapes.Shapes.is_indexed s))

let test_basic_classification () =
  let f, info =
    shapes_of
      {|
void k(int32* a, int32* out, int64 n) {
  psim gang_size(8) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    int64 two_i = 2 * i;
    int64 masked = i & 7;
    int64 uni = psim_num_threads() * 3;
    int32 data = a[i];
    out[i] = (int32)(two_i + masked + uni) + data;
  }
}
|}
  in
  let shape_by_op pred =
    let r = ref None in
    Func.iter_instrs f (fun _ i ->
        if pred i then r := Some (Pshapes.Shapes.shape_of info (Instr.Var i.Instr.id)));
    Option.get !r
  in
  (* thread_num = gang*G + lane: stride 1 *)
  let tn =
    shape_by_op (fun i ->
        match i.Instr.op with
        | Instr.Ibin (Instr.Add, _, _) when i.Instr.ty = Types.i64 -> false
        | Instr.Call (n, _) -> n = Intrinsics.lane_num
        | _ -> false)
  in
  check_stride "lane_num" 1L tn;
  (* 2 * i: stride 2 via mul.const *)
  let mul2 =
    shape_by_op (fun i ->
        match i.Instr.op with
        | Instr.Ibin (Instr.Mul, Instr.Const (Instr.Cint (_, 2L)), _) -> true
        | Instr.Ibin (Instr.Mul, _, Instr.Const (Instr.Cint (_, 2L))) -> true
        | _ -> false)
  in
  check_stride "2*i" 2L mul2;
  (* i & 7 with gang 8: lane bits exactly -> indexed iota (and.low_mask) *)
  let anded =
    shape_by_op (fun i ->
        match i.Instr.op with Instr.Ibin (Instr.And, _, _) -> true | _ -> false)
  in
  check_stride "i & 7" 1L anded;
  (* loads of per-lane addresses are varying *)
  let loaded =
    shape_by_op (fun i ->
        match i.Instr.op with Instr.Load _ -> true | _ -> false)
  in
  check_varying "a[i]" loaded;
  Alcotest.(check bool) "and.low_mask fired" true
    (Hashtbl.mem info.Pshapes.Shapes.rule_hits "and.low_mask")

let test_uniform_propagation () =
  let f, info =
    shapes_of
      {|
void k(int32* out, int64 n) {
  psim gang_size(8) num_spmd_threads(n) {
    int64 g = (int64)psim_gang_num();
    int64 u = g * 12 + (int64)psim_gang_size();
    int32 acc = 0;
    for (int32 j = 0; j < 5; j = j + 1) {
      acc = acc + (int32)u;
    }
    out[psim_thread_num()] = acc;
  }
}
|}
  in
  (* the loop counter and the accumulator are uniform: the loop stays a
     scalar loop *)
  Func.iter_instrs f (fun _ i ->
      match i.Instr.op with
      | Instr.Phi _ ->
          check_uniform "loop-carried phi"
            (Pshapes.Shapes.shape_of info (Instr.Var i.Instr.id))
      | _ -> ());
  ignore (stored_shape f info)

let test_divergence_forcing () =
  let f, info =
    shapes_of
      {|
void k(int32* a, int32* out, int64 n) {
  psim gang_size(8) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    int32 x = a[i];
    int32 c = 0;
    while (c < x) {
      c = c + 1;
    }
    out[i] = c;
  }
}
|}
  in
  (* varying exit condition: the loop-carried counter must be varying
     (it needs per-lane exit blending) *)
  Func.iter_instrs f (fun _ i ->
      match i.Instr.op with
      | Instr.Phi _ when i.Instr.ty = Types.i32 ->
          check_varying "divergent loop phi"
            (Pshapes.Shapes.shape_of info (Instr.Var i.Instr.id))
      | _ -> ())

let test_soa_alloca_shape () =
  let f, info =
    shapes_of
      {|
void k(int32* out, int64 n) {
  psim gang_size(8) num_spmd_threads(n) {
    int32 tmp[4];
    for (int32 j = 0; j < 4; j = j + 1) {
      tmp[(int64)j] = j * 2;
    }
    out[psim_thread_num()] = tmp[2];
  }
}
|}
  in
  (* the alloca pointer is lane-strided at element size (SoA layout) and
     geps at uniform indices preserve that, so accesses stay packed *)
  Func.iter_instrs f (fun _ i ->
      match i.Instr.op with
      | Instr.Alloca _ ->
          check_stride "alloca pointer" 4L
            (Pshapes.Shapes.shape_of info (Instr.Var i.Instr.id))
      | _ -> ());
  (* and the vectorizer turns them into packed accesses, not gathers *)
  let nf, report = Parsimony.Vectorizer.vectorize_func f in
  Panalysis.Check.check_func nf;
  Alcotest.(check int) "no gathers" 0 report.Parsimony.Vectorizer.gathers;
  Alcotest.(check int) "no scatters" 0 report.Parsimony.Vectorizer.scatters

(* the §4.2.2 multiplication example: indexed*indexed only with constant
   bases *)
let test_mul_indexed_needs_const_bases () =
  let _, info =
    shapes_of
      {|
void k(int32* out, int64 n) {
  psim gang_size(8) num_spmd_threads(n) {
    int64 l = (int64)psim_lane_num();
    int64 sq = l * l;        // both bases are the constant 0: stays indexed
    int64 t = psim_thread_num();
    int64 bad = t * t;       // base gang*G is not a compile-time constant
    out[t] = (int32)(sq + bad);
  }
}
|}
  in
  Alcotest.(check bool) "mul.both_const_bases fired" true
    (Hashtbl.mem info.Pshapes.Shapes.rule_hits "mul.both_const_bases")

let suites =
  [
    ( "shapes",
      [
        Alcotest.test_case "uniform / strided / varying classification" `Quick
          test_basic_classification;
        Alcotest.test_case "uniform loops stay scalar" `Quick test_uniform_propagation;
        Alcotest.test_case "divergent loop forcing" `Quick test_divergence_forcing;
        Alcotest.test_case "SoA alloca stays packed" `Quick test_soa_alloca_shape;
        Alcotest.test_case "indexed multiply needs constant bases" `Quick
          test_mul_indexed_needs_const_bases;
      ] );
  ]
