(* Cross-implementation verification of every Simd Library kernel: the
   scalar, auto-vectorized, Parsimony (sleef + ispc modes), and
   hand-written implementations must produce identical outputs (within
   tolerance for float reductions). *)

let verify_kernel (k : Psimdlib.Workload.kernel) () =
  try Pharness.Runner.verify k
  with Failure msg -> Alcotest.fail msg

let suites =
  [
    ( "simdlib.verify",
      List.map
        (fun (k : Psimdlib.Workload.kernel) ->
          Alcotest.test_case k.kname `Quick (verify_kernel k))
        Psimdlib.Registry.all );
  ]
