(* End-to-end tests of the PsimC front-end: parse -> desugar -> inline ->
   lower -> (SPMD reference | vectorize) -> execute, comparing the three
   execution strategies on the same inputs. *)

open Pir

let valt = Alcotest.testable Pmachine.Value.pp Pmachine.Value.equal

let compile src =
  let m = Pfrontend.Lower.compile src in
  Panalysis.Check.check_module m;
  m

(* Run [host] in a fresh interpreter after allocating i32 arrays; returns
   the contents of the arrays after the call. [vectorize] selects the
   execution strategy (reference executor vs Parsimony). *)
let run_i32 ?(vectorize = false) ?opts src ~host ~arrays ~scalars =
  let m = compile src in
  if vectorize then begin
    ignore (Parsimony.Vectorizer.run_module ?opts m);
    Panalysis.Check.check_module m
  end;
  let t = Pmachine.Interp.create m in
  let mem = t.Pmachine.Interp.mem in
  let addrs =
    List.map (fun vals -> Pmachine.Memory.alloc_array mem Types.I32 vals) arrays
  in
  let args =
    List.map (fun a -> Pmachine.Value.I (Int64.of_int a)) addrs @ scalars
  in
  ignore (Pmachine.Interp.run t host args);
  List.map2
    (fun addr vals -> Pmachine.Memory.read_array mem Types.I32 addr (Array.length vals))
    addrs arrays

let check_both ?opts src ~host ~arrays ~scalars =
  let ref_out = run_i32 src ~host ~arrays ~scalars in
  let vec_out = run_i32 ~vectorize:true ?opts src ~host ~arrays ~scalars in
  List.iteri
    (fun i (r, v) ->
      Alcotest.check (Alcotest.array valt) (Fmt.str "array %d" i) r v)
    (List.combine ref_out vec_out);
  ref_out

let i32s = Array.map (fun x -> Pmachine.Value.I (Int64.of_int x))

(* -- parse/lex errors -- *)

let test_parse_error () =
  match Pfrontend.Lower.compile "void f( {" with
  | exception Pfrontend.Parser.Error (_, _) -> ()
  | _ -> Alcotest.fail "expected parse error"

let test_type_error () =
  match
    Pfrontend.Lower.compile
      "void f(float* a) { float32 x = a; }"
  with
  | exception Pfrontend.Lower.Error (_, _) -> ()
  | _ -> Alcotest.fail "expected type error"

let test_return_in_psim_rejected () =
  match
    Pfrontend.Lower.compile
      "void f(int* a, int64 n) { psim gang_size(8) num_spmd_threads(n) { return; } }"
  with
  | exception Pfrontend.Lower.Error (_, _) -> ()
  | _ -> Alcotest.fail "expected error for return in psim region"

let test_gang_size_must_be_const () =
  match
    Pfrontend.Lower.compile
      "void f(int* a, int64 n) { psim gang_size(n) num_spmd_threads(n) { int64 i = psim_thread_num(); } }"
  with
  | exception Pfrontend.Lower.Error (_, _) -> ()
  | _ -> Alcotest.fail "expected error for non-constant gang size"

(* -- end-to-end semantics -- *)

let test_saxpy_like () =
  let src =
    {|
void kscale(int32* a, int32* b, int32 s, int64 n) {
  psim gang_size(8) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    b[i] = a[i] * s + (int32)i;
  }
}
|}
  in
  let a = Array.init 24 (fun i -> (i * 5) mod 17) in
  let out =
    check_both src ~host:"kscale"
      ~arrays:[ i32s a; i32s (Array.make 24 0) ]
      ~scalars:[ Pmachine.Value.I 3L; Pmachine.Value.I 24L ]
  in
  (match out with
  | [ _; b ] ->
      Array.iteri
        (fun i v ->
          Alcotest.check valt (Fmt.str "b[%d]" i)
            (Pmachine.Value.I (Int64.of_int ((a.(i) * 3) + i)))
            v)
        b
  | _ -> assert false)

let test_tail_gang () =
  (* 19 threads, gang 8: two full gangs + one partial *)
  let src =
    {|
void fill(int32* a, int64 n) {
  psim gang_size(8) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    a[i] = (int32)(i * 2);
  }
}
|}
  in
  let out =
    check_both src ~host:"fill"
      ~arrays:[ i32s (Array.make 24 999) ]
      ~scalars:[ Pmachine.Value.I 19L ]
  in
  (match out with
  | [ a ] ->
      Array.iteri
        (fun i v ->
          let expect = if i < 19 then i * 2 else 999 in
          Alcotest.check valt (Fmt.str "a[%d]" i)
            (Pmachine.Value.I (Int64.of_int expect))
            v)
        a
  | _ -> assert false)

let test_divergence_and_loops () =
  let src =
    {|
void countdown(int32* a, int32* b, int64 n) {
  psim gang_size(8) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    int32 x = a[i];
    int32 steps = 0;
    while (x > 1) {
      if (x % 2 == 0) {
        x = x / 2;
      } else {
        x = 3 * x + 1;
      }
      steps = steps + 1;
      if (steps > 100) { break; }
    }
    b[i] = steps;
  }
}
|}
  in
  ignore
    (check_both src ~host:"countdown"
       ~arrays:
         [ i32s [| 1; 2; 3; 7; 27; 97; 8; 100; 5; 6; 11; 12; 13; 14; 15; 16 |];
           i32s (Array.make 16 0) ]
       ~scalars:[ Pmachine.Value.I 16L ])

let test_for_continue () =
  let src =
    {|
void sums(int32* a, int32* b, int64 n) {
  psim gang_size(8) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    int32 acc = 0;
    for (int32 j = 0; j < 10; j = j + 1) {
      if (j == 5) { continue; }
      acc += a[i] + j;
    }
    b[i] = acc;
  }
}
|}
  in
  let a = Array.init 8 (fun i -> i) in
  let out =
    check_both src ~host:"sums"
      ~arrays:[ i32s a; i32s (Array.make 8 0) ]
      ~scalars:[ Pmachine.Value.I 8L ]
  in
  match out with
  | [ _; b ] ->
      Array.iteri
        (fun i v ->
          (* 9 iterations execute: sum of (a+j) for j in 0..9, j<>5 *)
          let expect = (9 * a.(i)) + (45 - 5) in
          Alcotest.check valt (Fmt.str "b[%d]" i)
            (Pmachine.Value.I (Int64.of_int expect))
            v)
        b
  | _ -> assert false

let test_shuffle_reverse () =
  let src =
    {|
void rev(int32* a, int32* b, int64 n) {
  psim gang_size(8) num_spmd_threads(n) {
    uint64 l = psim_lane_num();
    int32 v = a[psim_thread_num()];
    int32 r = psim_shuffle(v, 7 - l);
    b[psim_thread_num()] = r;
  }
}
|}
  in
  let a = Array.init 8 (fun i -> i * 10) in
  let out =
    check_both src ~host:"rev"
      ~arrays:[ i32s a; i32s (Array.make 8 0) ]
      ~scalars:[ Pmachine.Value.I 8L ]
  in
  match out with
  | [ _; b ] ->
      Array.iteri
        (fun i v ->
          Alcotest.check valt (Fmt.str "b[%d]" i)
            (Pmachine.Value.I (Int64.of_int a.(7 - i)))
            v)
        b
  | _ -> assert false

let test_inline_user_function () =
  let src =
    {|
inline int32 square_plus(int32 x, int32 y) {
  int32 s = x * x;
  return s + y;
}
void apply(int32* a, int32* b, int64 n) {
  psim gang_size(8) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    b[i] = square_plus(a[i], 5);
  }
}
|}
  in
  let a = Array.init 8 (fun i -> i + 1) in
  let out =
    check_both src ~host:"apply"
      ~arrays:[ i32s a; i32s (Array.make 8 0) ]
      ~scalars:[ Pmachine.Value.I 8L ]
  in
  match out with
  | [ _; b ] ->
      Array.iteri
        (fun i v ->
          Alcotest.check valt (Fmt.str "b[%d]" i)
            (Pmachine.Value.I (Int64.of_int ((a.(i) * a.(i)) + 5)))
            v)
        b
  | _ -> assert false

let test_short_circuit_safety () =
  (* a[i] must not be read when i >= limit: short-circuit && guards it;
     element limit..n-1 of a are "poison" that would change the result *)
  let src =
    {|
void guard(int32* a, int32* b, int32 limit, int64 n) {
  psim gang_size(8) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    int32 r = 0;
    if (i < (int64)limit && a[i] > 0) {
      r = a[i];
    }
    b[i] = r;
  }
}
|}
  in
  ignore
    (check_both src ~host:"guard"
       ~arrays:[ i32s [| 5; 6; 7; 8; 9; 10; 11; 12 |]; i32s (Array.make 8 0) ]
       ~scalars:[ Pmachine.Value.I 4L; Pmachine.Value.I 8L ])

let test_head_tail_gang_api () =
  let src =
    {|
void edges(int32* a, int64 n) {
  psim gang_size(8) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    int32 v = 1;
    if (psim_is_head_gang()) { v = 2; }
    if (psim_is_tail_gang()) { v = 3; }
    a[i] = v;
  }
}
|}
  in
  let out =
    check_both src ~host:"edges"
      ~arrays:[ i32s (Array.make 24 0) ]
      ~scalars:[ Pmachine.Value.I 24L ]
  in
  match out with
  | [ a ] ->
      Array.iteri
        (fun i v ->
          let expect = if i < 8 then 2 else if i >= 16 then 3 else 1 in
          Alcotest.check valt (Fmt.str "a[%d]" i)
            (Pmachine.Value.I (Int64.of_int expect))
            v)
        a
  | _ -> assert false

(* serial and psim versions of the same kernel agree *)
let test_serial_matches_psim () =
  let src =
    {|
void serial(int32* a, int32* b, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    int32 x = a[i];
    if (x > 50) { x = 50 + (x - 50) / 2; }
    b[i] = x * 2;
  }
}
void parallel(int32* a, int32* b, int64 n) {
  psim gang_size(8) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    int32 x = a[i];
    if (x > 50) { x = 50 + (x - 50) / 2; }
    b[i] = x * 2;
  }
}
|}
  in
  let a = Array.init 16 (fun i -> i * 9) in
  let arrays = [ i32s a; i32s (Array.make 16 0) ] in
  let scalars = [ Pmachine.Value.I 16L ] in
  let serial_out = run_i32 src ~host:"serial" ~arrays ~scalars in
  let psim_out = run_i32 ~vectorize:true src ~host:"parallel" ~arrays ~scalars in
  List.iteri
    (fun i (r, v) ->
      Alcotest.check (Alcotest.array valt) (Fmt.str "array %d" i) r v)
    (List.combine serial_out psim_out)

let suites =
  [
    ( "frontend.errors",
      [
        Alcotest.test_case "parse error" `Quick test_parse_error;
        Alcotest.test_case "type error" `Quick test_type_error;
        Alcotest.test_case "return in psim" `Quick test_return_in_psim_rejected;
        Alcotest.test_case "non-const gang size" `Quick test_gang_size_must_be_const;
      ] );
    ( "frontend.e2e",
      [
        Alcotest.test_case "saxpy-like kernel" `Quick test_saxpy_like;
        Alcotest.test_case "tail gang masking" `Quick test_tail_gang;
        Alcotest.test_case "divergent loop + break (collatz)" `Quick
          test_divergence_and_loops;
        Alcotest.test_case "for + continue" `Quick test_for_continue;
        Alcotest.test_case "shuffle reverse" `Quick test_shuffle_reverse;
        Alcotest.test_case "user function inlining" `Quick test_inline_user_function;
        Alcotest.test_case "short-circuit safety" `Quick test_short_circuit_safety;
        Alcotest.test_case "head/tail gang API" `Quick test_head_tail_gang_api;
        Alcotest.test_case "serial = psim" `Quick test_serial_matches_psim;
      ] );
  ]
