(* Differential tests for the Parsimony vectorizer: for each SPMD
   function, execute (a) the scalar function under the SPMD reference
   executor and (b) the vectorized function under the plain interpreter,
   with identical initial memory, and require identical final memory.

   This is the central correctness property of the paper's pass: the
   vector translation preserves the programming-model semantics. *)

open Pir

let valt = Alcotest.testable Pmachine.Value.pp Pmachine.Value.equal

(* Run [f] (SPMD or vectorized) in a fresh module+memory.  [setup]
   allocates inputs and returns (captured args, readback).  Argument
   convention: captured ++ [gang_num; num_threads]. *)
let execute (f : Func.t) ~gangs ~num_threads ~setup =
  let m = Func.create_module "t" in
  Func.add_func m f;
  let t = Pmachine.Interp.create m in
  let args, read = setup t.Pmachine.Interp.mem in
  for g = 0 to gangs - 1 do
    ignore
      (Pmachine.Interp.run t f.Func.fname
         (args
         @ [
             Pmachine.Value.I (Int64.of_int g);
             Pmachine.Value.I (Int64.of_int num_threads);
           ]))
  done;
  (read (), t)

(* Differential check: reference vs vectorized must produce identical
   outputs. The vectorized function must pass the verifier and contain no
   remaining psim intrinsics. *)
let differential ?(opts = Parsimony.Options.default) ?(gangs = 1) ?num_threads
    (f : Func.t) ~setup () =
  Panalysis.Check.check_func f;
  let gang =
    match f.Func.spmd with Some s -> s.Func.gang_size | None -> assert false
  in
  let num_threads = Option.value ~default:(gangs * gang) num_threads in
  let expected, _ = execute f ~gangs ~num_threads ~setup in
  let nf, report = Parsimony.Vectorizer.vectorize_func ~opts f in
  Panalysis.Check.check_func nf;
  Func.iter_instrs nf (fun _ i ->
      match i.Instr.op with
      | Instr.Call (n, _) when Intrinsics.is_psim n ->
          Alcotest.failf "psim intrinsic %s survived vectorization" n
      | _ -> ());
  let actual, _ = execute nf ~gangs ~num_threads ~setup in
  Alcotest.check (Alcotest.array valt) "reference = vectorized" expected actual;
  report

(* -- helpers to build SPMD test functions -- *)

let gang = 8

let spmd_func ?(partial = false) name params ret =
  Func.create name ~params ~ret ~spmd:{ Func.gang_size = gang; partial }

let thread_num b gang_param =
  (* gang_num * G + lane *)
  let lane = Builder.call b Types.i64 Intrinsics.lane_num [] in
  let base = Builder.mul b (Instr.Var gang_param) (Instr.ci64 gang) in
  Builder.add b base lane

let setup_arrays mem specs =
  (* allocate named arrays; returns (args, readback of all of them) *)
  let allocs =
    List.map
      (fun (s, vals) -> (s, Pmachine.Memory.alloc_array mem s vals))
      specs
  in
  let args =
    List.map (fun (_, a) -> Pmachine.Value.I (Int64.of_int a)) allocs
  in
  let read () =
    Array.concat
      (List.map2
         (fun (s, addr) (_, vals) ->
           Pmachine.Memory.read_array mem s addr (Array.length vals))
         allocs specs)
  in
  (args, read)

let i32s = Array.map (fun x -> Pmachine.Value.I (Int64.of_int x))

(* 1. straight-line strided: b[i] = a[i] * 2 + i *)
let test_straightline () =
  let f =
    spmd_func "sl"
      [ (0, Types.Ptr Types.I32); (1, Types.Ptr Types.I32); (2, Types.i64); (3, Types.i64) ]
      Types.Void
  in
  let b = Builder.create f in
  let i = thread_num b 2 in
  let p = Builder.gep b (Instr.Var 0) i in
  let v = Builder.load b p in
  let v2 = Builder.mul b v (Instr.ci32 2) in
  let i32 = Builder.cast b Instr.Trunc i Types.i32 in
  let r = Builder.add b v2 i32 in
  let q = Builder.gep b (Instr.Var 1) i in
  Builder.store b r q;
  Builder.ret_void b;
  let rep =
    differential f
      ~setup:(fun mem ->
        setup_arrays mem
          [
            (Types.I32, i32s (Array.init gang (fun i -> (i * 7) mod 50)));
            (Types.I32, i32s (Array.make gang 0));
          ])
      ()
  in
  Alcotest.(check int) "one packed load" 1 rep.Parsimony.Vectorizer.packed_loads;
  Alcotest.(check int) "one packed store" 1 rep.Parsimony.Vectorizer.packed_stores;
  Alcotest.(check int) "no gathers" 0 rep.Parsimony.Vectorizer.gathers

(* 2. divergent if: b[i] = a[i] > 10 ? a[i]*3 : 7 *)
let test_divergent_if () =
  let f =
    spmd_func "dif"
      [ (0, Types.Ptr Types.I32); (1, Types.Ptr Types.I32); (2, Types.i64); (3, Types.i64) ]
      Types.Void
  in
  let b = Builder.create f in
  let i = thread_num b 2 in
  let p = Builder.gep b (Instr.Var 0) i in
  let v = Builder.load b p in
  let c = Builder.icmp b Instr.Sgt v (Instr.ci32 10) in
  Builder.condbr b c "t" "e";
  let bt = Builder.add_block b "t" in
  Builder.position b bt;
  let v3 = Builder.mul b v (Instr.ci32 3) in
  Builder.br b "j";
  let be = Builder.add_block b "e" in
  Builder.position b be;
  Builder.br b "j";
  let bj = Builder.add_block b "j" in
  Builder.position b bj;
  let r = Builder.phi b Types.i32 [ ("t", v3); ("e", Instr.ci32 7) ] in
  let q = Builder.gep b (Instr.Var 1) i in
  Builder.store b r q;
  Builder.ret_void b;
  let rep =
    differential f
      ~setup:(fun mem ->
        setup_arrays mem
          [
            (Types.I32, i32s [| 3; 15; 9; 100; 11; 10; 0; 42 |]);
            (Types.I32, i32s (Array.make gang 0));
          ])
      ()
  in
  Alcotest.(check int) "one linearized branch" 1
    rep.Parsimony.Vectorizer.linearized_branches

(* 3. divergent loop (iteration count depends on lane): collatz-ish
   counter with a data-dependent trip count, plus a live-out *)
let test_divergent_loop () =
  let f =
    spmd_func "dloop"
      [ (0, Types.Ptr Types.I32); (1, Types.Ptr Types.I32); (2, Types.i64); (3, Types.i64) ]
      Types.Void
  in
  let b = Builder.create f in
  let i = thread_num b 2 in
  let p = Builder.gep b (Instr.Var 0) i in
  let n = Builder.load b p in
  Builder.br b "h";
  let bh = Builder.add_block b "h" in
  Builder.position b bh;
  let x = Builder.phi b Types.i32 [ ("entry", n) ] in
  let cnt = Builder.phi b Types.i32 [ ("entry", Instr.ci32 0) ] in
  let c = Builder.icmp b Instr.Sgt x (Instr.ci32 1) in
  Builder.condbr b c "body" "x";
  let bb = Builder.add_block b "body" in
  Builder.position b bb;
  let x2 = Builder.ibin b Instr.SDiv x (Instr.ci32 2) in
  let cnt2 = Builder.add b cnt (Instr.ci32 1) in
  Builder.br b "h";
  let bx = Builder.add_block b "x" in
  Builder.position b bx;
  let q = Builder.gep b (Instr.Var 1) i in
  Builder.store b cnt q;
  Builder.ret_void b;
  (match bh.instrs with
  | p1 :: p2 :: rest ->
      bh.instrs <-
        { p1 with Instr.op = Instr.Phi [ ("entry", n); ("body", x2) ] }
        :: { p2 with Instr.op = Instr.Phi [ ("entry", Instr.ci32 0); ("body", cnt2) ] }
        :: rest
  | _ -> assert false);
  ignore (x, cnt);
  let rep =
    differential f
      ~setup:(fun mem ->
        setup_arrays mem
          [
            (Types.I32, i32s [| 1; 2; 64; 9; 0; 100; 7; 31 |]);
            (Types.I32, i32s (Array.make gang (-1)));
          ])
      ()
  in
  Alcotest.(check int) "one masked loop" 1 rep.Parsimony.Vectorizer.masked_loops

(* 4. horizontal shuffle: b[i] = value of lane i^1 *)
let test_shuffle () =
  let f =
    spmd_func "shuf"
      [ (0, Types.Ptr Types.I32); (1, Types.Ptr Types.I32); (2, Types.i64); (3, Types.i64) ]
      Types.Void
  in
  let b = Builder.create f in
  let lane = Builder.call b Types.i64 Intrinsics.lane_num [] in
  let i = thread_num b 2 in
  let p = Builder.gep b (Instr.Var 0) i in
  let v = Builder.load b p in
  let src = Builder.xor b lane (Instr.ci64 1) in
  let got = Builder.call b Types.i32 Intrinsics.shuffle [ v; src ] in
  let q = Builder.gep b (Instr.Var 1) i in
  Builder.store b got q;
  Builder.ret_void b;
  ignore
    (differential f
       ~setup:(fun mem ->
         setup_arrays mem
           [
             (Types.I32, i32s (Array.init gang (fun i -> i * 11)));
             (Types.I32, i32s (Array.make gang 0));
           ])
       ())

(* 5. stride-2 load: b[i] = a[2i] + a[2i+1] -> packed+shuffle path *)
let test_strided_load () =
  let f =
    spmd_func "str2"
      [ (0, Types.Ptr Types.I32); (1, Types.Ptr Types.I32); (2, Types.i64); (3, Types.i64) ]
      Types.Void
  in
  let b = Builder.create f in
  let i = thread_num b 2 in
  let i2 = Builder.mul b i (Instr.ci64 2) in
  let p0 = Builder.gep b (Instr.Var 0) i2 in
  let v0 = Builder.load b p0 in
  let i21 = Builder.add b i2 (Instr.ci64 1) in
  let p1 = Builder.gep b (Instr.Var 0) i21 in
  let v1 = Builder.load b p1 in
  let s = Builder.add b v0 v1 in
  let q = Builder.gep b (Instr.Var 1) i in
  Builder.store b s q;
  Builder.ret_void b;
  let rep =
    differential f
      ~setup:(fun mem ->
        setup_arrays mem
          [
            (Types.I32, i32s (Array.init (2 * gang) (fun i -> i * 3)));
            (Types.I32, i32s (Array.make gang 0));
          ])
      ()
  in
  Alcotest.(check int) "strided loads shuffled" 2
    rep.Parsimony.Vectorizer.strided_shuffles;
  Alcotest.(check int) "no gathers" 0 rep.Parsimony.Vectorizer.gathers

(* 6. gather: b[i] = a[idx[i]] *)
let test_gather () =
  let f =
    spmd_func "gat"
      [
        (0, Types.Ptr Types.I32);
        (1, Types.Ptr Types.I32);
        (2, Types.Ptr Types.I32);
        (3, Types.i64);
        (4, Types.i64);
      ]
      Types.Void
  in
  let b = Builder.create f in
  let i = thread_num b 3 in
  let pidx = Builder.gep b (Instr.Var 1) i in
  let idx = Builder.load b pidx in
  let idx64 = Builder.cast b Instr.SExt idx Types.i64 in
  let pa = Builder.gep b (Instr.Var 0) idx64 in
  let v = Builder.load b pa in
  let q = Builder.gep b (Instr.Var 2) i in
  Builder.store b v q;
  Builder.ret_void b;
  let rep =
    differential f
      ~setup:(fun mem ->
        setup_arrays mem
          [
            (Types.I32, i32s (Array.init 16 (fun i -> i * 100)));
            (Types.I32, i32s [| 0; 5; 3; 3; 15; 1; 8; 2 |]);
            (Types.I32, i32s (Array.make gang 0));
          ])
      ()
  in
  Alcotest.(check bool) "emitted a gather" true (rep.Parsimony.Vectorizer.gathers >= 1)

(* 7. uniform branch stays scalar *)
let test_uniform_branch () =
  let f =
    spmd_func "ub"
      [ (0, Types.Ptr Types.I32); (1, Types.i32); (2, Types.i64); (3, Types.i64) ]
      Types.Void
  in
  let b = Builder.create f in
  let i = thread_num b 2 in
  let c = Builder.icmp b Instr.Sgt (Instr.Var 1) (Instr.ci32 5) in
  Builder.condbr b c "t" "e";
  let bt = Builder.add_block b "t" in
  Builder.position b bt;
  Builder.br b "j";
  let be = Builder.add_block b "e" in
  Builder.position b be;
  Builder.br b "j";
  let bj = Builder.add_block b "j" in
  Builder.position b bj;
  let r = Builder.phi b Types.i32 [ ("t", Instr.ci32 1); ("e", Instr.ci32 2) ] in
  let q = Builder.gep b (Instr.Var 0) i in
  Builder.store b r q;
  Builder.ret_void b;
  let setup big mem =
    let args, read =
      setup_arrays mem [ (Types.I32, i32s (Array.make gang 0)) ]
    in
    (args @ [ Pmachine.Value.I (if big then 10L else 3L) ], read)
  in
  let rep = differential f ~setup:(setup true) () in
  Alcotest.(check int) "uniform branch kept" 1
    rep.Parsimony.Vectorizer.uniform_branches_kept;
  Alcotest.(check int) "no linearization" 0
    rep.Parsimony.Vectorizer.linearized_branches;
  ignore (differential f ~setup:(setup false) ())

(* 8. uniform loop with varying accumulator: b[i] = sum_j a[i*K+j] *)
let test_uniform_loop () =
  let k = 4 in
  let f =
    spmd_func "uloop"
      [ (0, Types.Ptr Types.I32); (1, Types.Ptr Types.I32); (2, Types.i64); (3, Types.i64) ]
      Types.Void
  in
  let b = Builder.create f in
  let i = thread_num b 2 in
  Builder.br b "h";
  let bh = Builder.add_block b "h" in
  Builder.position b bh;
  let j = Builder.phi b Types.i64 [ ("entry", Instr.ci64 0) ] in
  let acc = Builder.phi b Types.i32 [ ("entry", Instr.ci32 0) ] in
  let c = Builder.icmp b Instr.Slt j (Instr.ci64 k) in
  Builder.condbr b c "body" "x";
  let bb = Builder.add_block b "body" in
  Builder.position b bb;
  let ik = Builder.mul b i (Instr.ci64 k) in
  let ikj = Builder.add b ik j in
  let p = Builder.gep b (Instr.Var 0) ikj in
  let v = Builder.load b p in
  let acc2 = Builder.add b acc v in
  let j2 = Builder.add b j (Instr.ci64 1) in
  Builder.br b "h";
  let bx = Builder.add_block b "x" in
  Builder.position b bx;
  let q = Builder.gep b (Instr.Var 1) i in
  Builder.store b acc q;
  Builder.ret_void b;
  (match bh.instrs with
  | p1 :: p2 :: rest ->
      bh.instrs <-
        { p1 with Instr.op = Instr.Phi [ ("entry", Instr.ci64 0); ("body", j2) ] }
        :: { p2 with Instr.op = Instr.Phi [ ("entry", Instr.ci32 0); ("body", acc2) ] }
        :: rest
  | _ -> assert false);
  ignore (j, acc);
  let rep =
    differential f
      ~setup:(fun mem ->
        setup_arrays mem
          [
            (Types.I32, i32s (Array.init (gang * k) (fun i -> (i * 13) mod 97)));
            (Types.I32, i32s (Array.make gang 0));
          ])
      ()
  in
  Alcotest.(check int) "loop stayed uniform" 1 rep.Parsimony.Vectorizer.uniform_loops;
  Alcotest.(check int) "no masked loop" 0 rep.Parsimony.Vectorizer.masked_loops

(* 9. partial gangs over multiple gangs: 3 gangs, 19 threads *)
let test_partial_gang () =
  let mkf partial =
    let f =
      spmd_func ~partial "pg"
        [ (0, Types.Ptr Types.I32); (1, Types.i64); (2, Types.i64) ]
        Types.Void
    in
    let b = Builder.create f in
    let i = thread_num b 1 in
    let p = Builder.gep b (Instr.Var 0) i in
    let i32 = Builder.cast b Instr.Trunc i Types.i32 in
    Builder.store b i32 p;
    Builder.ret_void b;
    f
  in
  (* the partial variant used for the tail gang *)
  let f = mkf true in
  ignore
    (differential f ~gangs:3 ~num_threads:19
       ~setup:(fun mem ->
         setup_arrays mem [ (Types.I32, i32s (Array.make 24 (-7))) ])
       ())

(* 10. sad_u8 horizontal op vs psadbw *)
let test_sad_u8 () =
  let f =
    spmd_func "sad"
      [ (0, Types.Ptr Types.I8); (1, Types.Ptr Types.I8); (2, Types.Ptr Types.I64); (3, Types.i64); (4, Types.i64) ]
      Types.Void
  in
  let b = Builder.create f in
  let i = thread_num b 3 in
  let pa = Builder.gep b (Instr.Var 0) i in
  let a = Builder.load b pa in
  let pb = Builder.gep b (Instr.Var 1) i in
  let b8 = Builder.load b pb in
  let s = Builder.call b Types.i64 Intrinsics.sad_u8 [ a; b8 ] in
  let q = Builder.gep b (Instr.Var 2) i in
  Builder.store b s q;
  Builder.ret_void b;
  ignore
    (differential f
       ~setup:(fun mem ->
         setup_arrays mem
           [
             (Types.I8, i32s [| 10; 250; 3; 40; 5; 6; 77; 8 |]);
             (Types.I8, i32s [| 9; 1; 30; 4; 50; 60; 7; 80 |]);
             (Types.I64, i32s (Array.make gang 0));
           ])
       ())

(* 11. ablation: shape analysis off must still be correct (all gathers) *)
let test_no_shape_analysis_correct () =
  let f =
    spmd_func "nsa"
      [ (0, Types.Ptr Types.I32); (1, Types.Ptr Types.I32); (2, Types.i64); (3, Types.i64) ]
      Types.Void
  in
  let b = Builder.create f in
  let i = thread_num b 2 in
  let p = Builder.gep b (Instr.Var 0) i in
  let v = Builder.load b p in
  let r = Builder.add b v (Instr.ci32 1) in
  let q = Builder.gep b (Instr.Var 1) i in
  Builder.store b r q;
  Builder.ret_void b;
  let opts = { Parsimony.Options.default with shape_analysis = false } in
  let rep =
    differential ~opts f
      ~setup:(fun mem ->
        setup_arrays mem
          [
            (Types.I32, i32s (Array.init gang (fun i -> i)));
            (Types.I32, i32s (Array.make gang 0));
          ])
      ()
  in
  Alcotest.(check bool) "ablation uses gathers" true
    (rep.Parsimony.Vectorizer.gathers >= 1)

(* 12. boscc on a divergent if is still correct *)
let test_boscc () =
  let f =
    spmd_func "boscc"
      [ (0, Types.Ptr Types.I32); (1, Types.Ptr Types.I32); (2, Types.i64); (3, Types.i64) ]
      Types.Void
  in
  let b = Builder.create f in
  let i = thread_num b 2 in
  let p = Builder.gep b (Instr.Var 0) i in
  let v = Builder.load b p in
  let c = Builder.icmp b Instr.Sgt v (Instr.ci32 1000) in
  Builder.condbr b c "t" "e";
  let bt = Builder.add_block b "t" in
  Builder.position b bt;
  let v3 = Builder.mul b v (Instr.ci32 3) in
  Builder.br b "j";
  let be = Builder.add_block b "e" in
  Builder.position b be;
  Builder.br b "j";
  let bj = Builder.add_block b "j" in
  Builder.position b bj;
  let r = Builder.phi b Types.i32 [ ("t", v3); ("e", v) ] in
  let q = Builder.gep b (Instr.Var 1) i in
  Builder.store b r q;
  Builder.ret_void b;
  let opts = { Parsimony.Options.default with boscc = true } in
  (* all lanes take else: the then side is skipped at runtime *)
  ignore
    (differential ~opts f
       ~setup:(fun mem ->
         setup_arrays mem
           [
             (Types.I32, i32s (Array.init gang (fun i -> i)));
             (Types.I32, i32s (Array.make gang 0));
           ])
       ());
  (* mixed lanes *)
  ignore
    (differential ~opts f
       ~setup:(fun mem ->
         setup_arrays mem
           [
             (Types.I32, i32s [| 1; 2000; 3; 4000; 5; 6; 7000; 8 |]);
             (Types.I32, i32s (Array.make gang 0));
           ])
       ())

let suites =
  [
    ( "vectorizer.diff",
      [
        Alcotest.test_case "straight-line strided" `Quick test_straightline;
        Alcotest.test_case "divergent if" `Quick test_divergent_if;
        Alcotest.test_case "divergent loop + live-out" `Quick test_divergent_loop;
        Alcotest.test_case "horizontal shuffle" `Quick test_shuffle;
        Alcotest.test_case "stride-2 load via shuffle" `Quick test_strided_load;
        Alcotest.test_case "gather" `Quick test_gather;
        Alcotest.test_case "uniform branch" `Quick test_uniform_branch;
        Alcotest.test_case "uniform loop" `Quick test_uniform_loop;
        Alcotest.test_case "partial gangs" `Quick test_partial_gang;
        Alcotest.test_case "sad_u8 / psadbw" `Quick test_sad_u8;
        Alcotest.test_case "ablation: no shape analysis" `Quick
          test_no_shape_analysis_correct;
        Alcotest.test_case "boscc" `Quick test_boscc;
      ] );
  ]
