(* Tests for the auto-vectorization baseline: legality decisions must
   match the classic vectorizer behavior the paper describes, and
   transformed loops must preserve semantics bit-for-bit. *)

open Pir

let valt = Alcotest.testable Pmachine.Value.pp Pmachine.Value.equal

let compile src =
  let m = Pfrontend.Lower.compile src in
  Panalysis.Check.check_module m;
  m

let run ?(autovec = false) src ~host ~arrays ~scalars =
  let m = compile src in
  let reports = if autovec then Pautovec.Autovec.run_module m else [] in
  if autovec then Panalysis.Check.check_module m;
  let t = Pmachine.Interp.create m in
  let mem = t.Pmachine.Interp.mem in
  let addrs =
    List.map
      (fun (s, vals) -> Pmachine.Memory.alloc_array mem s vals)
      arrays
  in
  let args =
    List.map (fun a -> Pmachine.Value.I (Int64.of_int a)) addrs @ scalars
  in
  ignore (Pmachine.Interp.run t host args);
  let out =
    List.map2
      (fun addr (s, vals) ->
        Pmachine.Memory.read_array mem s addr (Array.length vals))
      addrs arrays
  in
  (out, reports, t.Pmachine.Interp.stats)

let i32s = Array.map (fun x -> Pmachine.Value.I (Int64.of_int x))

let host_report reports host =
  List.find (fun (r : Pautovec.Autovec.report) -> r.func = host) reports

let check_identical ~msg a b =
  List.iteri
    (fun i (x, y) ->
      Alcotest.check (Alcotest.array valt) (Fmt.str "%s: array %d" msg i) x y)
    (List.combine a b)

(* 1. restrict saxpy vectorizes at VF=16 and speeds up *)
let test_saxpy_vectorizes () =
  let src =
    {|
void saxpy(int32* restrict x, int32* restrict y, int32 a, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    y[i] = a * x[i] + y[i];
  }
}
|}
  in
  let arrays =
    [ (Types.I32, i32s (Array.init 100 (fun i -> i)));
      (Types.I32, i32s (Array.init 100 (fun i -> i * 2))) ]
  in
  let scalars = [ Pmachine.Value.I 7L; Pmachine.Value.I 100L ] in
  let ref_out, _, ref_stats = run src ~host:"saxpy" ~arrays ~scalars in
  let vec_out, reports, vec_stats =
    run ~autovec:true src ~host:"saxpy" ~arrays ~scalars
  in
  check_identical ~msg:"saxpy" ref_out vec_out;
  let r = host_report reports "saxpy" in
  (match Pautovec.Autovec.vectorized_loops r with
  | [ (_, vf) ] -> Alcotest.(check int) "VF = 512/32" 16 vf
  | _ -> Alcotest.fail "expected one vectorized loop");
  Alcotest.(check bool)
    (Fmt.str "autovec faster (%g vs %g)" vec_stats.cycles ref_stats.cycles)
    true
    (vec_stats.cycles < ref_stats.cycles /. 4.0)

(* 2. Listing 1: loop-carried dependence must NOT vectorize *)
let test_listing1_rejected () =
  let src =
    {|
void shift(int32* a, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    int32 tmp = a[i];
    a[i + 1] = tmp;
  }
}
|}
  in
  let arrays = [ (Types.I32, i32s (Array.init 32 (fun i -> i))) ] in
  let scalars = [ Pmachine.Value.I 31L ] in
  let ref_out, _, _ = run src ~host:"shift" ~arrays ~scalars in
  let vec_out, reports, _ = run ~autovec:true src ~host:"shift" ~arrays ~scalars in
  check_identical ~msg:"shift" ref_out vec_out;
  let r = host_report reports "shift" in
  Alcotest.(check int) "not vectorized" 0
    (List.length (Pautovec.Autovec.vectorized_loops r));
  match (List.hd r.loops).outcome with
  | Error (Pautovec.Autovec.Loop_carried _) -> ()
  | Error e -> Alcotest.failf "wrong reason: %s" (Pautovec.Autovec.reason_to_string e)
  | Ok _ -> Alcotest.fail "should not vectorize"

(* 3. without restrict, two-pointer loops must not vectorize *)
let test_no_restrict_rejected () =
  let src =
    {|
void copy(int32* a, int32* b, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    b[i] = a[i];
  }
}
|}
  in
  let _, reports, _ =
    run ~autovec:true src ~host:"copy"
      ~arrays:[ (Types.I32, i32s [| 1; 2; 3; 4 |]); (Types.I32, i32s [| 0; 0; 0; 0 |]) ]
      ~scalars:[ Pmachine.Value.I 4L ]
  in
  let r = host_report reports "copy" in
  match (List.hd r.loops).outcome with
  | Error (Pautovec.Autovec.May_alias _) -> ()
  | Error e -> Alcotest.failf "wrong reason: %s" (Pautovec.Autovec.reason_to_string e)
  | Ok _ -> Alcotest.fail "should not vectorize without restrict"

(* 4. sum reduction vectorizes and matches *)
let test_reduction () =
  let src =
    {|
void total(int32* restrict a, int32* restrict out, int64 n) {
  int32 acc = 0;
  for (int64 i = 0; i < n; i = i + 1) {
    acc = acc + a[i];
  }
  out[0] = acc;
}
|}
  in
  let a = Array.init 77 (fun i -> (i * 3) mod 23) in
  let arrays = [ (Types.I32, i32s a); (Types.I32, i32s [| 0 |]) ] in
  let scalars = [ Pmachine.Value.I 77L ] in
  let ref_out, _, _ = run src ~host:"total" ~arrays ~scalars in
  let vec_out, reports, _ = run ~autovec:true src ~host:"total" ~arrays ~scalars in
  check_identical ~msg:"reduction" ref_out vec_out;
  let r = host_report reports "total" in
  Alcotest.(check int) "vectorized" 1
    (List.length (Pautovec.Autovec.vectorized_loops r))

(* 5. data-dependent inner while rejects vectorization (mandelbrot-like) *)
let test_divergent_loop_rejected () =
  let src =
    {|
void iters(int32* restrict a, int32* restrict b, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    int32 x = a[i];
    int32 c = 0;
    while (x > 1) {
      x = x / 2;
      c = c + 1;
    }
    b[i] = c;
  }
}
|}
  in
  let arrays =
    [ (Types.I32, i32s [| 1; 8; 64; 3; 100; 7; 2; 9 |]);
      (Types.I32, i32s (Array.make 8 0)) ]
  in
  let scalars = [ Pmachine.Value.I 8L ] in
  let ref_out, _, _ = run src ~host:"iters" ~arrays ~scalars in
  let vec_out, reports, _ = run ~autovec:true src ~host:"iters" ~arrays ~scalars in
  check_identical ~msg:"divergent" ref_out vec_out;
  let r = host_report reports "iters" in
  (* the outer loop is not innermost; the inner loop has no supported
     bound: nothing vectorizes *)
  Alcotest.(check int) "nothing vectorized" 0
    (List.length (Pautovec.Autovec.vectorized_loops r))

(* 6. widest-type rule: u8 data with i32 intermediates gets VF=16, not 64 *)
let test_widest_type_rule () =
  let src =
    {|
void widen8(uint8* restrict a, uint8* restrict b, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    int32 v = (int32)a[i];
    int32 w = v * 2 + 1;
    b[i] = (uint8)clamp(w, 0, 255);
  }
}
|}
  in
  let a = Array.init 64 (fun i -> (i * 7) mod 256) in
  let arrays = [ (Types.I8, i32s a); (Types.I8, i32s (Array.make 64 0)) ] in
  let scalars = [ Pmachine.Value.I 64L ] in
  let ref_out, _, _ = run src ~host:"widen8" ~arrays ~scalars in
  let vec_out, reports, _ = run ~autovec:true src ~host:"widen8" ~arrays ~scalars in
  check_identical ~msg:"widen8" ref_out vec_out;
  let r = host_report reports "widen8" in
  match Pautovec.Autovec.vectorized_loops r with
  | [ (_, vf) ] -> Alcotest.(check int) "VF limited by i32 intermediates" 16 vf
  | _ -> Alcotest.fail "expected one vectorized loop"

(* 7. odd trip counts exercise the scalar remainder loop *)
let test_remainder_loop () =
  let src =
    {|
void incr(int32* restrict a, int32* restrict b, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    b[i] = a[i] + 1;
  }
}
|}
  in
  List.iter
    (fun n ->
      let a = Array.init 40 (fun i -> i * 3) in
      let arrays = [ (Types.I32, i32s a); (Types.I32, i32s (Array.make 40 0)) ] in
      let scalars = [ Pmachine.Value.I (Int64.of_int n) ] in
      let ref_out, _, _ = run src ~host:"incr" ~arrays ~scalars in
      let vec_out, _, _ = run ~autovec:true src ~host:"incr" ~arrays ~scalars in
      check_identical ~msg:(Fmt.str "n=%d" n) ref_out vec_out)
    [ 0; 1; 15; 16; 17; 31; 33; 40 ]

(* 8. loops calling libm are not vectorized (no -fveclib), but still
   execute correctly *)
let test_math_vectorizes () =
  let src =
    {|
void roots(float32* restrict a, float32* restrict b, int64 n) {
  for (int64 i = 0; i < n; i = i + 1) {
    b[i] = sqrtf(a[i]) + 1.0;
  }
}
|}
  in
  let mkf = Array.map (fun x -> Pmachine.Value.F x) in
  let a = mkf (Array.init 32 (fun i -> float_of_int (i * i))) in
  let zero = mkf (Array.make 32 0.0) in
  let m = compile src in
  let reports = Pautovec.Autovec.run_module m in
  Panalysis.Check.check_module m;
  let r = host_report reports "roots" in
  Alcotest.(check int) "not vectorized (libm call)" 0
    (List.length (Pautovec.Autovec.vectorized_loops r));
  let t = Pmachine.Interp.create m in
  let mem = t.Pmachine.Interp.mem in
  let aa = Pmachine.Memory.alloc_array mem Types.F32 a in
  let bb = Pmachine.Memory.alloc_array mem Types.F32 zero in
  ignore
    (Pmachine.Interp.run t "roots"
       [ Pmachine.Value.I (Int64.of_int aa); Pmachine.Value.I (Int64.of_int bb); Pmachine.Value.I 32L ]);
  let out = Pmachine.Memory.read_array mem Types.F32 bb 32 in
  Array.iteri
    (fun i v ->
      Alcotest.check valt (Fmt.str "b[%d]" i)
        (Pmachine.Value.F (float_of_int i +. 1.0))
        v)
    out

let suites =
  [
    ( "autovec",
      [
        Alcotest.test_case "saxpy vectorizes (restrict)" `Quick test_saxpy_vectorizes;
        Alcotest.test_case "Listing 1 rejected" `Quick test_listing1_rejected;
        Alcotest.test_case "no restrict rejected" `Quick test_no_restrict_rejected;
        Alcotest.test_case "add reduction" `Quick test_reduction;
        Alcotest.test_case "divergent inner loop rejected" `Quick
          test_divergent_loop_rejected;
        Alcotest.test_case "widest-type VF rule" `Quick test_widest_type_rule;
        Alcotest.test_case "remainder loop" `Quick test_remainder_loop;
        Alcotest.test_case "math library calls stay scalar" `Quick
          test_math_vectorizes;
      ] );
  ]
