test/suite_random.ml: Array Fmt Gen Int64 List Panalysis Parsimony Pfrontend Pir Pmachine QCheck QCheck_alcotest String Test
