test/suite_machine.ml: Alcotest Array Astring_contains Builder Fmt Func Instr Int64 Intrinsics List Panalysis Pir Pmachine Types
