test/suite_simdlib.ml: Alcotest List Pharness Psimdlib
