test/suite_simplify.ml: Alcotest Array Builder Fmt Func Instr Int64 List Panalysis Parsimony Pfrontend Pir Pmachine Types
