test/suite_vectorizer.ml: Alcotest Array Builder Func Instr Int64 Intrinsics List Option Panalysis Parsimony Pir Pmachine Types
