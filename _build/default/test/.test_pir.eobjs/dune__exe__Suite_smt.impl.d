test/suite_smt.ml: Alcotest Array Facts Fmt Int64 List Pir Psmt QCheck QCheck_alcotest Rules Verify
