test/suite_backend.ml: Alcotest Array Fmt Func Int64 List Option Panalysis Parsimony Pbackend Pfrontend Pir Pmachine Psimdlib Types
