test/suite_autovec.ml: Alcotest Array Fmt Int64 List Panalysis Pautovec Pfrontend Pir Pmachine Types
