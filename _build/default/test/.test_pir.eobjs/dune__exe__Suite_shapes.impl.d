test/suite_shapes.ml: Alcotest Func Hashtbl Instr Intrinsics List Option Panalysis Parsimony Pfrontend Pir Pshapes Types
