test/suite_frontend.ml: Alcotest Array Fmt Int64 List Panalysis Parsimony Pfrontend Pir Pmachine Types
