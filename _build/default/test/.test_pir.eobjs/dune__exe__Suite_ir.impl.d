test/suite_ir.ml: Alcotest Astring_contains Builder Fmt Func Instr Int64 Ints List Panalysis Pir Printer QCheck QCheck_alcotest Types Verifier
