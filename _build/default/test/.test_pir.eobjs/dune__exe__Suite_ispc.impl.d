test/suite_ispc.ml: Alcotest List Pharness Pispc Psimdlib
