(* Tests for the late cleanup pass: CSE of pure ops and loads, load
   invalidation across stores, DCE, and masked store coalescing — each
   checked both structurally and by differential execution. *)

open Pir

let count_op f pred =
  Func.fold_instrs f 0 (fun acc _ i -> if pred i then acc + 1 else acc)

let is_load (i : Instr.instr) =
  match i.Instr.op with Instr.Load _ -> true | _ -> false

let run_func (f : Func.t) args mem_setup =
  let m = Func.create_module "t" in
  Func.add_func m f;
  let t = Pmachine.Interp.create m in
  let extra = mem_setup t.Pmachine.Interp.mem in
  ignore (Pmachine.Interp.run t f.fname (args @ extra));
  t.Pmachine.Interp.mem

let test_cse_merges_pure_and_loads () =
  let f = Func.create "cse" ~params:[ (0, Types.Ptr Types.I32) ] ~ret:Types.i32 in
  let b = Builder.create f in
  let x1 = Builder.load b (Instr.Var 0) in
  let x2 = Builder.load b (Instr.Var 0) in
  let s1 = Builder.add b x1 (Instr.ci32 5) in
  let s2 = Builder.add b x2 (Instr.ci32 5) in
  let r = Builder.mul b s1 s2 in
  Builder.ret b (Some r);
  Parsimony.Simplify.run_func f;
  Panalysis.Check.check_func f;
  Alcotest.(check int) "loads merged" 1 (count_op f is_load);
  Alcotest.(check int) "adds merged" 1
    (count_op f (fun i ->
         match i.Instr.op with Instr.Ibin (Instr.Add, _, _) -> true | _ -> false))

let test_stores_invalidate_loads () =
  let f = Func.create "inval" ~params:[ (0, Types.Ptr Types.I32) ] ~ret:Types.i32 in
  let b = Builder.create f in
  let x1 = Builder.load b (Instr.Var 0) in
  Builder.store b (Instr.ci32 42) (Instr.Var 0);
  let x2 = Builder.load b (Instr.Var 0) in
  let r = Builder.add b x1 x2 in
  Builder.ret b (Some r);
  Parsimony.Simplify.run_func f;
  Alcotest.(check int) "both loads survive the store" 2 (count_op f is_load);
  (* semantics: old + 42 *)
  let mem =
    run_func f [] (fun mem ->
        let a = Pmachine.Memory.alloc_array mem Types.I32 [| Pmachine.Value.I 7L |] in
        [ Pmachine.Value.I (Int64.of_int a) ])
  in
  ignore mem

let test_dce_drops_dead_code () =
  let f = Func.create "dead" ~params:[ (0, Types.i32) ] ~ret:Types.i32 in
  let b = Builder.create f in
  let _dead1 = Builder.mul b (Instr.Var 0) (Instr.ci32 3) in
  let live = Builder.add b (Instr.Var 0) (Instr.ci32 1) in
  let _dead2 = Builder.xor b live (Instr.ci32 9) in
  Builder.ret b (Some live);
  Parsimony.Simplify.run_func f;
  Alcotest.(check int) "only the live add remains" 1
    (Func.fold_instrs f 0 (fun acc _ _ -> acc + 1))

let test_store_coalescing () =
  (* two masked stores to the same chunk with disjoint constant masks
     merge into one; execution semantics preserved *)
  let build () =
    let f = Func.create "co" ~params:[ (0, Types.Ptr Types.I32) ] ~ret:Types.Void in
    let b = Builder.create f in
    let base = Builder.gep b (Instr.Var 0) (Instr.ci64 0) in
    let v1 = Instr.cvec Types.I32 (Array.init 4 (fun i -> Int64.of_int (10 + i))) in
    let v2 = Instr.cvec Types.I32 (Array.init 4 (fun i -> Int64.of_int (20 + i))) in
    let m1 = Instr.cvec Types.I1 [| 1L; 0L; 1L; 0L |] in
    let m2 = Instr.cvec Types.I1 [| 0L; 1L; 0L; 0L |] in
    Builder.vstore b ~mask:m1 v1 base;
    Builder.vstore b ~mask:m2 v2 base;
    Builder.ret_void b;
    f
  in
  let exec f =
    let m = Func.create_module "t" in
    Func.add_func m f;
    let t = Pmachine.Interp.create m in
    let a =
      Pmachine.Memory.alloc_array t.Pmachine.Interp.mem Types.I32
        (Array.make 4 (Pmachine.Value.I 99L))
    in
    ignore (Pmachine.Interp.run t "co" [ Pmachine.Value.I (Int64.of_int a) ]);
    Pmachine.Memory.read_array t.Pmachine.Interp.mem Types.I32 a 4
  in
  let before = exec (build ()) in
  let f = build () in
  Parsimony.Simplify.run_func f;
  Panalysis.Check.check_func f;
  Alcotest.(check int) "stores merged" 1
    (count_op f (fun i ->
         match i.Instr.op with Instr.VStore _ -> true | _ -> false));
  let after = exec f in
  Alcotest.(check bool) "same memory effect" true
    (Array.for_all2 Pmachine.Value.equal before after);
  (* expected: [10; 21; 12; 99] *)
  Alcotest.(check bool) "merged contents" true
    (Array.for_all2 Pmachine.Value.equal after
       [| Pmachine.Value.I 10L; Pmachine.Value.I 21L; Pmachine.Value.I 12L; Pmachine.Value.I 99L |])

let test_coalescing_blocked_by_load () =
  (* a load between the two stores must prevent merging *)
  let f = Func.create "noco" ~params:[ (0, Types.Ptr Types.I32) ] ~ret:Types.Void in
  let b = Builder.create f in
  let base = Builder.gep b (Instr.Var 0) (Instr.ci64 0) in
  let v1 = Instr.cvec Types.I32 (Array.make 4 1L) in
  let v2 = Instr.cvec Types.I32 (Array.make 4 2L) in
  let m1 = Instr.cvec Types.I1 [| 1L; 0L; 0L; 0L |] in
  let m2 = Instr.cvec Types.I1 [| 0L; 1L; 0L; 0L |] in
  Builder.vstore b ~mask:m1 v1 base;
  let x = Builder.load b (Instr.Var 0) in
  Builder.vstore b ~mask:m2 v2 base;
  Builder.store b x (Instr.Var 0);
  Builder.ret_void b;
  Parsimony.Simplify.run_func f;
  Alcotest.(check int) "stores not merged" 2
    (count_op f (fun i ->
         match i.Instr.op with Instr.VStore _ -> true | _ -> false))

let suites =
  [
    ( "simplify",
      [
        Alcotest.test_case "CSE merges pure ops and loads" `Quick
          test_cse_merges_pure_and_loads;
        Alcotest.test_case "stores invalidate load CSE" `Quick
          test_stores_invalidate_loads;
        Alcotest.test_case "DCE" `Quick test_dce_drops_dead_code;
        Alcotest.test_case "masked store coalescing" `Quick test_store_coalescing;
        Alcotest.test_case "coalescing blocked by loads" `Quick
          test_coalescing_blocked_by_load;
      ] );
  ]

(* head/tail gang specialization (paper §3): the mid-gang copy must have
   the boundary checks folded away entirely *)
let test_head_tail_specialization () =
  let src =
    {|
void edges(int32* a, int64 n) {
  psim gang_size(8) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    int32 v = 1;
    if (psim_is_head_gang()) { v = v + 100; }
    if (psim_is_tail_gang()) { v = v + 200; }
    a[i] = v;
  }
}
|}
  in
  let m = Pfrontend.Lower.compile src in
  ignore (Parsimony.Vectorizer.run_module m);
  Parsimony.Simplify.run_module m;
  Panalysis.Check.check_module m;
  (* three specialized copies exist *)
  let names = List.map (fun f -> f.Func.fname) m.funcs in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " exists") true (List.mem n names))
    [ "edges__psim1_head"; "edges__psim1"; "edges__psim1_tail" ];
  (* the mid copy is branch-free straight-line code *)
  let mid = Func.find_func m "edges__psim1" in
  Alcotest.(check int) "mid copy has a single block" 1 (List.length mid.blocks);
  (* and execution is still correct across all gang positions *)
  let t = Pmachine.Interp.create m in
  let a =
    Pmachine.Memory.alloc_array t.Pmachine.Interp.mem Types.I32
      (Array.make 24 (Pmachine.Value.I 0L))
  in
  ignore
    (Pmachine.Interp.run t "edges"
       [ Pmachine.Value.I (Int64.of_int a); Pmachine.Value.I 21L ]);
  let out = Pmachine.Memory.read_array t.Pmachine.Interp.mem Types.I32 a 24 in
  Array.iteri
    (fun i v ->
      let expect =
        if i >= 21 then 0
        else if i < 8 then 101
        else if i >= 16 then 201
        else 1
      in
      Alcotest.(check bool) (Fmt.str "a[%d]" i) true
        (Pmachine.Value.equal v (Pmachine.Value.I (Int64.of_int expect))))
    out

let suites =
  suites
  @ [
      ( "simplify.specialization",
        [
          Alcotest.test_case "head/tail gang copies fold boundary checks" `Quick
            test_head_tail_specialization;
        ] );
    ]
