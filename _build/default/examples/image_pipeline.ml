(* A realistic image-processing pipeline built from the Simd Library
   port: BGRA -> gray -> Gaussian blur -> Sobel edge magnitude, with
   every stage compiled by the Parsimony vectorizer, next to the same
   pipeline compiled scalar.

     dune exec examples/image_pipeline.exe *)

open Psimdlib

let w = Workload.width
let h = Workload.height

let stage name = Option.get (Registry.find name)

let build_stage impl name =
  let k = stage name in
  (k, Pharness.Runner.build_module k impl)

let run_pipeline impl =
  let total_cycles = ref 0.0 in
  (* shared memory across stages *)
  let mem = Pmachine.Memory.create () in
  let npx = w * h in
  let bgra =
    Pmachine.Memory.alloc_array mem Pir.Types.I8
      (Array.init (4 * npx) (fun i -> Workload.u8 42 i))
  in
  let gray = Pmachine.Memory.alloc mem (npx + 64) in
  let blurred = Pmachine.Memory.alloc mem (npx + 64) in
  let edges = Pmachine.Memory.alloc mem ((2 * npx) + 64) in
  let call name args =
    let k, m = build_stage impl name in
    ignore k;
    let t = Pmachine.Interp.create ~mem m in
    ignore (Pmachine.Interp.run t name args);
    total_cycles := !total_cycles +. t.Pmachine.Interp.stats.cycles
  in
  let vi v = Pmachine.Value.I (Int64.of_int v) in
  call "bgra_to_gray" [ vi bgra; vi gray; vi npx ];
  call "gaussian_blur_3x3" [ vi gray; vi blurred; vi w; vi h ];
  call "sobel_dx_abs" [ vi blurred; vi edges; vi w; vi h ];
  let out = Pmachine.Memory.read_array mem Pir.Types.I16 edges npx in
  (out, !total_cycles)

let () =
  Fmt.pr "== image pipeline: bgra_to_gray |> gaussian_blur_3x3 |> sobel_dx_abs ==@.";
  Fmt.pr "image: %dx%d@." w h;
  let scalar_out, scalar_cycles = run_pipeline Pharness.Runner.Scalar in
  let vec_out, vec_cycles =
    run_pipeline (Pharness.Runner.ParsimonyImpl Parsimony.Options.default)
  in
  assert (Array.for_all2 Pmachine.Value.equal scalar_out vec_out);
  Fmt.pr "scalar pipeline:    %.0f cycles@." scalar_cycles;
  Fmt.pr "parsimony pipeline: %.0f cycles (%.1fx)@." vec_cycles
    (scalar_cycles /. vec_cycles);
  (* tiny ASCII rendering of the edge magnitudes *)
  Fmt.pr "@.edge magnitude (downsampled):@.";
  let shades = [| ' '; '.'; ':'; '*'; '#'; '@' |] in
  for y = 1 to h - 2 do
    if y mod 2 = 1 then begin
      for x = 1 to w - 2 do
        if x mod 2 = 1 then begin
          let v =
            match vec_out.((y * w) + x) with
            | Pmachine.Value.I v -> Int64.to_int (Pir.Ints.sext 16 v)
            | _ -> 0
          in
          let lvl = min 5 (abs v / 60) in
          Fmt.pr "%c" shades.(lvl)
        end
      done;
      Fmt.pr "@."
    end
  done
