(* Option pricing with the ispc benchmark suite's Black-Scholes and
   Binomial kernels: the workload where the paper's Figure 4 shows
   the SLEEF-vs-ispc pow gap.

     dune exec examples/options_pricing.exe *)

let find name =
  List.find (fun (k : Psimdlib.Workload.kernel) -> k.kname = name) Pispc.Suite.all

let price name =
  let k = find name in
  Fmt.pr "@.== %s (%d options) ==@." name 512;
  let strategies =
    [
      ("scalar", Pharness.Runner.Scalar);
      ("autovec", Pharness.Runner.Autovec);
      ("parsimony+sleef", Pharness.Runner.ParsimonyImpl Parsimony.Options.default);
      ("ispc mode", Pharness.Runner.ParsimonyImpl Parsimony.Options.ispc);
    ]
  in
  let base = ref 0.0 in
  List.iter
    (fun (label, impl) ->
      let r = Pharness.Runner.run k impl in
      if label = "scalar" then base := r.cycles;
      let price0 =
        match List.assoc_opt "result" r.outputs with
        | Some out -> out.(0)
        | None -> Pmachine.Value.Unit
      in
      Fmt.pr "  %-16s %10.0f cycles  (%.2fx)   result[0] = %a@." label r.cycles
        (!base /. r.cycles) Pmachine.Value.pp price0)
    strategies

let () =
  price "black_scholes";
  price "binomial_options";
  Fmt.pr
    "@.note how ispc mode wins on binomial_options only: the gap is the\n\
     vector math library's pow, not the SPMD semantics (paper Section 6).@."
