(* Mandelbrot rendered by the vectorized divergent loop — the classic
   SPMD-on-SIMD demonstration (masked loop with per-lane exit).

     dune exec examples/mandelbrot_render.exe *)

let () =
  let k =
    List.find
      (fun (k : Psimdlib.Workload.kernel) -> k.kname = "mandelbrot")
      Pispc.Suite.all
  in
  let scalar = Pharness.Runner.run k Pharness.Runner.Scalar in
  let vec =
    Pharness.Runner.run k (Pharness.Runner.ParsimonyImpl Parsimony.Options.default)
  in
  let counts = List.assoc "counts" vec.outputs in
  let w = 64 and h = 24 in
  let shades = "  .:-=+*#%@" in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let it =
        match counts.((y * w) + x) with
        | Pmachine.Value.I v -> Int64.to_int v
        | _ -> 0
      in
      let lvl = min (String.length shades - 1) (it * (String.length shades - 1) / 48) in
      print_char shades.[lvl]
    done;
    print_newline ()
  done;
  Fmt.pr "@.scalar: %.0f cycles; parsimony: %.0f cycles (%.1fx)@."
    scalar.cycles vec.cycles
    (scalar.cycles /. vec.cycles)
