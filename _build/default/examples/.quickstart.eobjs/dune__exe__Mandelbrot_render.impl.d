examples/mandelbrot_render.ml: Array Fmt Int64 List Parsimony Pharness Pispc Pmachine Psimdlib String
