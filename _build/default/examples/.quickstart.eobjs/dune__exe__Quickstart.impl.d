examples/quickstart.ml: Array Fmt Int64 List Panalysis Parsimony Pfrontend Pir Pmachine
