examples/options_pricing.ml: Array Fmt List Parsimony Pharness Pispc Pmachine Psimdlib
