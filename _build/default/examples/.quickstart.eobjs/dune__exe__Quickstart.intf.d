examples/quickstart.mli:
