examples/options_pricing.mli:
