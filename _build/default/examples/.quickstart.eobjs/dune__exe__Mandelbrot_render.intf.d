examples/mandelbrot_render.mli:
