examples/image_pipeline.ml: Array Fmt Int64 Option Parsimony Pharness Pir Pmachine Psimdlib Registry Workload
