(* Quickstart: compile a Parsimony (PsimC) kernel, run it through the
   SPMD reference executor and through the vectorizer, and compare.

     dune exec examples/quickstart.exe *)

let source =
  {|
// y[i] = a * x[i] + y[i], 16-wide gangs
void saxpy(float32* x, float32* y, float32 a, int64 n) {
  psim gang_size(16) num_spmd_threads(n) {
    int64 i = psim_thread_num();
    y[i] = a * x[i] + y[i];
  }
}
|}

let n = 1000

let run ~vectorize =
  (* 1. front-end: parse, type-check, extract the SPMD region *)
  let m = Pfrontend.Lower.compile source in
  Panalysis.Check.check_module m;
  (* 2. the Parsimony IR-to-IR pass (or not, for the reference run) *)
  if vectorize then begin
    let reports = Parsimony.Vectorizer.run_module m in
    List.iter (fun r -> Fmt.pr "  pass: %a@." Parsimony.Vectorizer.pp_report r) reports;
    Parsimony.Simplify.run_module m
  end;
  (* 3. execute on the simulated AVX-512 machine *)
  let t = Pmachine.Interp.create m in
  let mem = t.Pmachine.Interp.mem in
  let x =
    Pmachine.Memory.alloc_array mem Pir.Types.F32
      (Array.init n (fun i -> Pmachine.Value.F (float_of_int i)))
  in
  let y =
    Pmachine.Memory.alloc_array mem Pir.Types.F32
      (Array.init n (fun i -> Pmachine.Value.F (float_of_int (n - i))))
  in
  ignore
    (Pmachine.Interp.run t "saxpy"
       [
         Pmachine.Value.I (Int64.of_int x);
         Pmachine.Value.I (Int64.of_int y);
         Pmachine.Value.F 2.0;
         Pmachine.Value.I (Int64.of_int n);
       ]);
  (Pmachine.Memory.read_array mem Pir.Types.F32 y n, t.Pmachine.Interp.stats.cycles)

let () =
  Fmt.pr "== Parsimony quickstart: saxpy over %d elements ==@." n;
  Fmt.pr "@.reference (SPMD executor, one thread per lane):@.";
  let ref_out, ref_cycles = run ~vectorize:false in
  Fmt.pr "  cycles: %.0f@." ref_cycles;
  Fmt.pr "@.vectorized (Parsimony pass):@.";
  let vec_out, vec_cycles = run ~vectorize:true in
  Fmt.pr "  cycles: %.0f@." vec_cycles;
  assert (Array.for_all2 Pmachine.Value.equal ref_out vec_out);
  Fmt.pr "@.outputs identical; y[0..4] = %a@."
    Fmt.(array ~sep:(any ", ") Pmachine.Value.pp)
    (Array.sub vec_out 0 5);
  Fmt.pr "simulated speedup: %.1fx@." (ref_cycles /. vec_cycles)
