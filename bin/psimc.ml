(* psimc — the Parsimony compiler driver.

   Compiles PsimC source files through the reproduction tool-chain:

     psimc build FILE.psim          type-check + vectorize, report stats
     psimc ir FILE.psim             print the scalar PIR
     psimc vec FILE.psim            print the vectorized PIR
     psimc shapes FILE.psim         print shape analysis results
     psimc run FILE.psim -e F ARGS  execute function F on the simulator
                                    (--engine interp|vm selects the
                                    executor; "exec" is an alias)
     psimc profile FILE.psim -e F   execute and print a hot-block profile
                                    and opcode mix (both engines;
                                    --flamegraph FILE exports collapsed
                                    call stacks)
     psimc autovec FILE.psim        run the auto-vectorizer baseline
     psimc lint FILE.psim           SPMD sanitizer (races, OOB, uninit, ...)
     psimc fuzz --seed N --count N  differential fuzzing (pfuzz)
     psimc verify-rules             offline shape-rule verification

   FILE may also name a built-in benchmark kernel (e.g. "mandelbrot"):
   its PsimC source from the registry is compiled instead.

   Observability flags, accepted by every compiling subcommand:
     --remarks        print optimization remarks (LLVM -Rpass style)
     --trace FILE     write a Chrome trace_event JSON of the pipeline
     --dump-ir DIR    write an IR snapshot after each pass
     --verbosity L    stderr log level (quiet|app|error|warning|info|debug;
                      default from PARSIMONY_LOG, else warning) *)

open Cmdliner

(* resolve FILE: a path on disk, or the name of a built-in kernel from
   the Figure-5 (Simd Library) or Figure-4 (ispc) registries.  Under the
   SLP strategies a kernel name resolves to its *serial* source — SLP
   packs standard scalar code (including its restrict qualifiers), the
   psim-annotated variant is Parsimony's input *)
let load_source ?(opts = Parsimony.Options.default) path =
  if Sys.file_exists path then
    (Filename.basename path, Pharness.Pipeline.read_file path)
  else
    match
      List.find_opt
        (fun (k : Psimdlib.Workload.kernel) -> k.kname = path)
        (Psimdlib.Registry.all @ Pispc.Suite.all)
    with
    | Some k ->
        let src =
          match opts.Parsimony.Options.strategy with
          | Parsimony.Options.Parsimony -> k.psim_src
          | Parsimony.Options.SlpGreedy | Parsimony.Options.SlpOptimal ->
              k.serial_src
        in
        (k.kname, src)
    | None ->
        Fmt.epr "psimc: %s: no such file or built-in kernel@." path;
        exit 1

(* -- observability options (shared by all compiling subcommands) -- *)

type obs = {
  remarks : bool;
  metrics : bool;
  trace : string option;
  dump_ir : string option;
  verbosity : Logs.level option option;
}

let obs_term =
  let remarks =
    Arg.(
      value & flag
      & info [ "remarks" ]
          ~doc:"Print optimization remarks (passed/missed/analysis) to stderr")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Collect the metrics registry (pass counters, interpreter stats, \
             remark tallies) and dump it to stderr on exit")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a Chrome trace_event JSON trace to $(docv)")
  in
  let dump_ir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-ir" ] ~docv:"DIR"
          ~doc:"Dump the IR after each pass into $(docv)")
  in
  let verbosity =
    let level_conv =
      Arg.conv
        ( (fun s ->
            match Pobs.Logging.level_of_string s with
            | Ok l -> Ok l
            | Error msg -> Error (`Msg msg)),
          fun ppf l ->
            Fmt.string ppf
              (match l with
              | None -> "quiet"
              | Some l -> Logs.level_to_string (Some l)) )
    in
    Arg.(
      value
      & opt (some level_conv) None
      & info [ "verbosity" ] ~docv:"LEVEL"
          ~doc:
            "Stderr log level: quiet, app, error, warning, info or debug \
             (default: $(b,PARSIMONY_LOG), else warning)")
  in
  let mk remarks metrics trace dump_ir verbosity =
    { remarks; metrics; trace; dump_ir; verbosity }
  in
  Term.(const mk $ remarks $ metrics $ trace $ dump_ir $ verbosity)

(* Run [f] with the requested observability active; afterwards print
   collected remarks and the metrics dump to stderr and write the trace
   file. *)
let with_obs (o : obs) f =
  Pobs.Logging.setup ?level:o.verbosity ();
  if o.remarks then Pobs.Remarks.set_mode Pobs.Remarks.Full;
  if o.metrics then Pobs.Metrics.enable ();
  if o.trace <> None then Pobs.Trace.enable ();
  let finish () =
    if o.remarks then begin
      List.iter (fun r -> Fmt.epr "%a@." Pobs.Remarks.pp r)
        (Pobs.Remarks.drain ());
      Pobs.Remarks.set_mode Pobs.Remarks.Off
    end;
    if o.metrics then begin
      Fmt.epr "== metrics ==@.%a" Pobs.Metrics.pp ();
      Pobs.Metrics.disable ()
    end;
    match o.trace with
    | Some file ->
        Pobs.Trace.write_chrome file;
        Pobs.Trace.disable ();
        Fmt.epr "wrote trace to %s@." file
    | None -> ()
  in
  Fun.protect ~finally:finish f

let cfg_of_obs ?(vectorize = true) ?(simplify = true) (o : obs) opts =
  {
    Pharness.Pipeline.default with
    vectorize;
    simplify;
    opts;
    dump_ir = o.dump_ir;
  }

let compile_source ?vectorize ?simplify o opts file =
  let name, src = load_source ~opts file in
  Pharness.Pipeline.compile ~cfg:(cfg_of_obs ?vectorize ?simplify o opts) ~name
    src

(* -- common options -- *)

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"PsimC source file or built-in kernel name")

let math_lib =
  Arg.(
    value
    & opt (enum [ ("sleef", "sleef"); ("ispc", "ispc") ]) "sleef"
    & info [ "math-lib" ] ~doc:"Vector math library to target (sleef or ispc)")

let no_shapes =
  Arg.(value & flag & info [ "no-shape-analysis" ] ~doc:"Disable shape analysis (ablation)")

let boscc =
  Arg.(value & flag & info [ "boscc" ] ~doc:"Branch on superword condition codes")

let analyze =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:
          "Feed dataflow analysis (divergence, per-lane stride) back into \
           classification: reclassify provably strided gathers/scatters as \
           packed accesses and keep provably uniform branches scalar")

let strategy =
  let strategy_conv =
    Arg.conv
      ( (fun s ->
          match Parsimony.Options.strategy_of_string s with
          | Some st -> Ok st
          | None ->
              Error
                (`Msg
                   (Fmt.str "unknown strategy %S (parsimony, slp or slp-greedy)"
                      s))),
        fun ppf st -> Fmt.string ppf (Parsimony.Options.strategy_name st) )
  in
  Arg.(
    value
    & opt strategy_conv Parsimony.Options.Parsimony
    & info [ "strategy" ] ~docv:"STRATEGY"
        ~doc:
          "Compilation strategy: $(b,parsimony) (SPMD gang widening, the \
           default), $(b,slp) (superword-level-parallelism packing of \
           straight-line statement groups, globally-optimized pairing) or \
           $(b,slp-greedy) (SLP with the classic greedy bottom-up packer)")

let opts_term =
  let mk math_lib no_shapes boscc analyze strategy =
    {
      Parsimony.Options.default with
      strategy;
      math_lib;
      shape_analysis = not no_shapes;
      boscc;
      analysis_feedback = analyze;
    }
  in
  Term.(const mk $ math_lib $ no_shapes $ boscc $ analyze $ strategy)

(* -- subcommands -- *)

let build_cmd =
  let run obs opts file =
    with_obs obs (fun () ->
        let _, reports = compile_source obs opts file in
        List.iter
          (fun r -> Fmt.pr "%a@." Parsimony.Vectorizer.pp_report r)
          reports;
        Fmt.pr "ok@.")
  in
  Cmd.v (Cmd.info "build" ~doc:"Type-check and vectorize; print pass statistics")
    Term.(const run $ obs_term $ opts_term $ file_arg)

let ir_cmd =
  let run obs file =
    with_obs obs (fun () ->
        let m, _ =
          compile_source ~vectorize:false obs Parsimony.Options.default file
        in
        Fmt.pr "%a@." Pir.Printer.pp_module m)
  in
  Cmd.v (Cmd.info "ir" ~doc:"Print the scalar PIR (before vectorization)")
    Term.(const run $ obs_term $ file_arg)

let vec_cmd =
  let run obs opts file =
    with_obs obs (fun () ->
        let m, _ = compile_source obs opts file in
        Fmt.pr "%a@." Pir.Printer.pp_module m)
  in
  Cmd.v (Cmd.info "vec" ~doc:"Print the vectorized PIR")
    Term.(const run $ obs_term $ opts_term $ file_arg)

let shapes_cmd =
  let run obs file =
    with_obs obs (fun () ->
        let m, _ =
          compile_source ~vectorize:false ~simplify:false obs
            Parsimony.Options.default file
        in
        List.iter
          (fun (f : Pir.Func.t) ->
            match f.spmd with
            | None -> ()
            | Some _ ->
                Fmt.pr "@.%a" Pir.Printer.pp_func f;
                let info = Pshapes.Shapes.analyze f in
                Pir.Func.iter_instrs f (fun _ i ->
                    if i.Pir.Instr.ty <> Pir.Types.Void then
                      Fmt.pr "  %%%d : %a@." i.id Pshapes.Shapes.pp_shape
                        (Pshapes.Shapes.shape_of info (Pir.Instr.Var i.id)));
                Fmt.pr "rules fired:@.";
                (* sorted: Hashtbl iteration order is not deterministic *)
                Hashtbl.fold (fun r n acc -> (r, n) :: acc)
                  info.Pshapes.Shapes.rule_hits []
                |> List.sort (fun (a, _) (b, _) -> String.compare a b)
                |> List.iter (fun (r, n) -> Fmt.pr "  %-24s %d@." r n))
          m.funcs)
  in
  Cmd.v
    (Cmd.info "shapes"
       ~doc:"Print per-value shape analysis results for SPMD functions")
    Term.(const run $ obs_term $ file_arg)

let report_cmd =
  let run obs opts file =
    with_obs obs (fun () ->
        let mname, cards =
          match opts.Parsimony.Options.strategy with
          | Parsimony.Options.Parsimony ->
              let m, reports = compile_source obs opts file in
              (m.Pir.Func.mname, Parsimony.Scorecard.of_module ~reports m)
          | Parsimony.Options.SlpGreedy | Parsimony.Options.SlpOptimal ->
              (* the pipeline discards SLP reports (its report type is the
                 vectorizer's); run the stages directly to keep them *)
              let name, src = load_source ~opts file in
              let m = Pfrontend.Lower.compile ~name src in
              Panalysis.Check.check_module m;
              let reports = Parsimony.Slp.run_module ~opts m in
              Panalysis.Check.check_module m;
              Parsimony.Simplify.run_module m;
              (m.Pir.Func.mname, Parsimony.Scorecard.of_module_slp ~reports m)
        in
        if cards = [] then begin
          Fmt.epr "psimc report: no SPMD function was vectorized@.";
          exit 1
        end;
        List.iter (fun c -> Fmt.pr "%a" Parsimony.Scorecard.pp c) cards;
        match cards with
        | [ _ ] -> ()
        | _ ->
            Fmt.pr "@.";
            Fmt.pr "%a" Parsimony.Scorecard.pp
              (Parsimony.Scorecard.aggregate ~name:(mname ^ " (total)") cards))
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Print a vectorization coverage scorecard per SPMD function: %instrs \
          vectorized, packed/shuffle/gather/scatter memory-op mix, mask \
          density, linearized branches and serialized calls")
    Term.(const run $ obs_term $ opts_term $ file_arg)

let autovec_cmd =
  let run obs file =
    with_obs obs (fun () ->
        let name, src = load_source file in
        let m = Pfrontend.Lower.compile ~name src in
        let reports = Pautovec.Autovec.run_module m in
        List.iter (fun r -> Fmt.pr "%a@." Pautovec.Autovec.pp_report r) reports)
  in
  Cmd.v
    (Cmd.info "autovec" ~doc:"Run the loop auto-vectorizer baseline; report per-loop outcomes")
    Term.(const run $ obs_term $ file_arg)

(* shared by run/exec and profile: parse CLI args, execute, print result *)
let execute_on_simulator ?(profile = false) obs opts file entry scalar args
    ~engine k =
  with_obs obs (fun () ->
      let m, _ = compile_source ~vectorize:(not scalar) obs opts file in
      let t = Pmachine.Engine.create ~kind:engine ~profile m in
      let mem = Pmachine.Engine.mem t in
      let buffers = ref [] in
      let parse_arg a =
        if String.length a > 1 && a.[0] = 'i' then begin
          let n = int_of_string (String.sub a 1 (String.length a - 1)) in
          let addr =
            Pmachine.Memory.alloc_array mem Pir.Types.I32
              (Array.init n (fun i -> Pmachine.Value.I (Int64.of_int i)))
          in
          buffers := (addr, n) :: !buffers;
          Pmachine.Value.I (Int64.of_int addr)
        end
        else if String.contains a '.' then Pmachine.Value.F (float_of_string a)
        else Pmachine.Value.I (Int64.of_string a)
      in
      let vargs = List.map parse_arg args in
      let result =
        Pobs.Trace.with_span ~cat:"machine"
          ~args:
            [
              ("entry", entry);
              ("engine", Pmachine.Engine.kind_to_string (Pmachine.Engine.kind t));
            ]
          "execute"
          (fun () -> Pmachine.Engine.run t entry vargs)
      in
      let stats = Pmachine.Engine.stats t in
      Fmt.pr "engine: %s@."
        (Pmachine.Engine.kind_to_string (Pmachine.Engine.kind t));
      Fmt.pr "result: %a@." Pmachine.Value.pp result;
      Fmt.pr "cycles: %.0f  instructions: %d (vector: %d)@." stats.cycles
        stats.instrs stats.vector_instrs;
      List.iter
        (fun (addr, n) ->
          let vals = Pmachine.Memory.read_array mem Pir.Types.I32 addr n in
          Fmt.pr "buffer@%d: %a@." addr
            Fmt.(array ~sep:(any " ") Pmachine.Value.pp)
            (Array.sub vals 0 (min n 32)))
        (List.rev !buffers);
      k t)

let entry_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "e"; "entry" ] ~docv:"FUNC" ~doc:"Function to execute")

let scalar_arg =
  Arg.(value & flag & info [ "scalar" ] ~doc:"Skip vectorization (SPMD reference executor)")

let engine_arg =
  let engine_conv =
    Arg.conv
      ( (fun s ->
          match Pmachine.Engine.kind_of_string s with
          | Some k -> Ok k
          | None -> Error (`Msg (Fmt.str "unknown engine %S (interp or vm)" s))),
        fun ppf k -> Fmt.string ppf (Pmachine.Engine.kind_to_string k) )
  in
  Arg.(
    value
    & opt engine_conv Pmachine.Engine.Vm
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: $(b,vm) (register-VM bytecode, the default) or \
           $(b,interp) (tree-walking reference interpreter).  Both produce \
           bit-identical results and cycle counts.")

let sim_args =
  Arg.(
    value & pos_right 0 string []
    & info [] ~docv:"ARGS"
        ~doc:
          "Arguments: integers/floats passed directly; 'iN' allocates an \
           N-element i32 buffer initialized 0..N-1 and passes its address \
           (printed back after the run)")

let run_term =
  let run obs opts file entry scalar engine args =
    execute_on_simulator obs opts file entry scalar args ~engine (fun _ -> ())
  in
  Term.(
    const run $ obs_term $ opts_term $ file_arg $ entry_arg $ scalar_arg
    $ engine_arg $ sim_args)

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Execute a function on the simulated machine")
    run_term

(* alias kept distinct so scripts can say "exec" when they mean the
   production engine path *)
let exec_cmd =
  Cmd.v
    (Cmd.info "exec"
       ~doc:"Execute a function on the simulated machine (alias of run)")
    run_term

let profile_cmd =
  let top =
    Arg.(
      value & opt int 20
      & info [ "top" ] ~docv:"N" ~doc:"Number of hot blocks to print")
  in
  let flamegraph =
    Arg.(
      value
      & opt (some string) None
      & info [ "flamegraph" ] ~docv:"FILE"
          ~doc:
            "Write collapsed call stacks to $(docv) in the folded format \
             (one \"caller;callee cycles\" line per call path) consumed by \
             flamegraph.pl and speedscope.  Cycles are simulated, so the \
             output is deterministic.")
  in
  let run obs opts file entry scalar engine top flamegraph args =
    execute_on_simulator ~profile:true obs opts file entry scalar args ~engine
      (fun t ->
        let p = Pmachine.Engine.profile t in
        Fmt.pr "@.== Hot blocks (per-block cycle attribution, engine %s) ==@."
          p.Pmachine.Profile.p_engine;
        Pmachine.Profile.pp ~limit:top Fmt.stdout p;
        Option.iter
          (fun file ->
            Pmachine.Profile.write_folded file p;
            Fmt.pr "flamegraph: wrote %d folded stack(s) to %s@."
              (List.length p.Pmachine.Profile.p_folded)
              file)
          flamegraph)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Execute a function on the simulated machine and print per-block \
          cycle/instruction attribution plus the dynamic opcode-class mix.  \
          Both engines attribute (the VM counts on its dispatch loop, the \
          interpreter on its block caches) and their profiles agree bit for \
          bit; $(b,--flamegraph) additionally exports collapsed call stacks.")
    Term.(
      const run $ obs_term $ opts_term $ file_arg $ entry_arg $ scalar_arg
      $ engine_arg $ top $ flamegraph $ sim_args)

let lint_cmd =
  let run obs opts file =
    with_obs obs (fun () ->
        let name, src = load_source file in
        let findings = Pharness.Pipeline.lint ~opts ~name src in
        List.iter (fun f -> Fmt.pr "%a@." Psan.pp_finding f) findings;
        if findings = [] then Fmt.pr "no findings@."
        else begin
          let errors =
            List.length (List.filter (fun f -> f.Psan.severity = Psan.Error) findings)
          in
          Fmt.pr "%d finding(s), %d error(s)@." (List.length findings) errors;
          exit 1
        end)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the SPMD sanitizer (psan): cross-lane races, out-of-bounds and \
          misaligned accesses, uninitialized reads, dead stores.  Exits \
          non-zero when any finding is reported.")
    Term.(const run $ obs_term $ opts_term $ file_arg)

let fuzz_cmd =
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Base seed; seeds $(docv) .. $(docv)+count-1 are checked.  A seed \
             fully determines the generated program and its inputs.")
  in
  let count =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate and check")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs" ] ~docv:"N"
          ~doc:"Worker processes to fan seeds over (default: CPU count)")
  in
  let corpus =
    Arg.(
      value
      & opt string "test/corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Directory where reduced failing programs are persisted")
  in
  let no_reduce =
    Arg.(
      value & flag
      & info [ "no-reduce" ] ~doc:"Persist failing programs without minimizing them")
  in
  let mutate =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutate" ] ~docv:"KIND"
          ~doc:
            "Inject a known vectorizer bug before checking, to validate that \
             the harness catches it.  Supported: $(b,flip-mask) (swap the \
             blend operands of a linearized branch).")
  in
  let replay =
    Arg.(
      value & flag
      & info [ "replay" ]
          ~doc:
            "Re-run the full oracle on every .psim file in the corpus \
             directory instead of generating new programs")
  in
  let preset =
    Arg.(
      value
      & opt (some string) None
      & info [ "preset" ] ~docv:"NAME"
          ~doc:
            "Pin every seed to one generator preset instead of rotating: \
             $(b,default), $(b,int), $(b,float), $(b,mem) or \
             $(b,straightline) (branch-free bodies with adjacent-access \
             runs, the SLP packer's seed pattern).")
  in
  let run obs seed count jobs corpus no_reduce mutate replay preset =
    with_obs obs (fun () ->
        if replay then begin
          let files = Pfuzz.Driver.corpus_files corpus in
          if files = [] then Fmt.pr "no corpus files under %s@." corpus;
          let failed =
            List.filter
              (fun file ->
                match Pfuzz.Driver.replay file with
                | Ok () ->
                    Fmt.pr "replay %s: ok@." file;
                    false
                | Error msg ->
                    Fmt.pr "replay %s@." msg;
                    true)
              files
          in
          if failed <> [] then exit 1
        end
        else begin
          let mutate =
            match mutate with
            | None -> None
            | Some s -> (
                match Pfuzz.Mutate.of_string s with
                | Some m -> Some m
                | None ->
                    Fmt.epr "psimc fuzz: unknown mutation %S@." s;
                    exit 2)
          in
          let cfg =
            match preset with
            | None -> None
            | Some name -> (
                match Pfuzz.Driver.preset_of_string name with
                | Some _ as c -> c
                | None ->
                    Fmt.epr
                      "psimc fuzz: unknown preset %S (default, int, float, \
                       mem or straightline)@."
                      name;
                    exit 2)
          in
          let jobs = if jobs <= 0 then Pparallel.Pool.default_jobs () else jobs in
          let summary =
            Pfuzz.Driver.run ?cfg ?mutate ~reduce:(not no_reduce) ~seed ~count
              ~jobs ()
          in
          Fmt.pr "%a" Pfuzz.Driver.pp_summary summary;
          List.iter
            (fun (f : Pfuzz.Driver.failure) ->
              let path = Pfuzz.Driver.save_corpus ~dir:corpus f in
              Fmt.pr "seed %d: %s -> %s (%d reduction oracle calls)@." f.seed
                f.bucket path f.reduce_tests)
            summary.failures;
          if summary.failures <> [] then exit 1
        end)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random PsimC SPMD kernels, execute \
          them under the reference interpreter and under every vectorizer / \
          autovec / legalization configuration, require bit-identical \
          outputs and a clean sanitizer, and shrink any failure to a minimal \
          reproducer in the corpus directory.")
    Term.(
      const run $ obs_term $ seed $ count $ jobs $ corpus $ no_reduce $ mutate
      $ replay $ preset)

let verify_kernel_cmd =
  let files_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:"PsimC source files or built-in kernel names to verify")
  in
  let suite =
    Arg.(
      value & flag
      & info [ "suite" ]
          ~doc:"Verify every built-in Figure-4/Figure-5 kernel")
  in
  let gang =
    Arg.(
      value & opt int 4
      & info [ "gang" ] ~docv:"N"
          ~doc:"Gang size to verify at (kernel gang sizes are overridden)")
  in
  let width =
    Arg.(
      value & opt int 8
      & info [ "width" ] ~docv:"W"
          ~doc:
            "Bit bound on integer input domains.  Arithmetic always runs at \
             native width; $(docv) only bounds the enumerated input values.")
  in
  let extent =
    Arg.(
      value & opt int 8
      & info [ "extent" ] ~docv:"K" ~doc:"Modeled elements per buffer parameter")
  in
  let slack =
    Arg.(
      value & opt int 4
      & info [ "slack" ] ~docv:"K"
          ~doc:"Extra modeled elements on each side of every buffer")
  in
  let timeout_cases =
    Arg.(
      value & opt int Psmt.Equiv.default_opts.Psmt.Equiv.max_cases
      & info [ "timeout-cases" ] ~docv:"M"
          ~doc:"Give up (Bounded-out) beyond this many enumerated cases")
  in
  let fuel =
    Arg.(
      value & opt int Psmt.Equiv.default_opts.Psmt.Equiv.fuel
      & info [ "fuel" ] ~docv:"N"
          ~doc:"Instruction budget per symbolic execution")
  in
  let legalize =
    Arg.(
      value & opt (some int) None
      & info [ "legalize" ] ~docv:"LANES"
          ~doc:"Also legalize the candidate to $(docv)-lane chunks before checking")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write a JSON verification report to $(docv)")
  in
  let run obs opts files suite gang width extent slack timeout_cases fuel legalize json
      =
    with_obs obs (fun () ->
        let sources =
          files
          @ (if suite then
               List.map
                 (fun (k : Psimdlib.Workload.kernel) -> k.kname)
                 (Psimdlib.Registry.all @ Pispc.Suite.all)
             else [])
        in
        if sources = [] then begin
          Fmt.epr "psimc verify-kernel: no sources (pass FILEs or --suite)@.";
          exit 2
        end;
        let params =
          {
            Parsimony.Tv.default_params with
            gang = Some gang;
            width;
            extent;
            slack;
            max_cases = timeout_cases;
            fuel;
          }
        in
        let transform m =
          (* the candidate is whatever the selected strategy produces *)
          (match opts.Parsimony.Options.strategy with
          | Parsimony.Options.Parsimony ->
              ignore (Parsimony.Vectorizer.run_module ~opts m)
          | Parsimony.Options.SlpGreedy | Parsimony.Options.SlpOptimal ->
              ignore (Parsimony.Slp.run_module ~opts m));
          Panalysis.Check.check_module m;
          Parsimony.Simplify.run_module m;
          (match legalize with
          | None -> ()
          | Some lanes ->
              m.Pir.Func.funcs <-
                List.map
                  (fun f -> Pbackend.Legalize.legalize_func ~lanes f)
                  m.Pir.Func.funcs);
          Panalysis.Check.check_module m
        in
        let refuted = ref 0 and bounded = ref 0 and proved = ref 0 in
        let docs =
          List.map
            (fun file ->
              let name, src = load_source ~opts file in
              let m, _ =
                Pharness.Pipeline.compile
                  ~cfg:(cfg_of_obs ~vectorize:false ~simplify:false obs opts)
                  ~name src
              in
              let serial =
                match opts.Parsimony.Options.strategy with
                | Parsimony.Options.Parsimony -> false
                | Parsimony.Options.SlpGreedy | Parsimony.Options.SlpOptimal ->
                    true
              in
              let results = Parsimony.Tv.verify_module ~params ~serial ~transform m in
              List.iter
                (fun (r : Parsimony.Tv.result) ->
                  (match r.verdict with
                  | Psmt.Equiv.Proved _ -> incr proved
                  | Psmt.Equiv.Refuted _ -> incr refuted
                  | Psmt.Equiv.Bounded _ -> incr bounded);
                  Fmt.pr "%s %s: %a@." name r.vfunc Psmt.Equiv.pp_verdict r.verdict)
                results;
              ( name,
                Pobs.Json.Arr
                  (List.map
                     (fun (r : Parsimony.Tv.result) ->
                       Pobs.Json.Obj
                         [
                           ("func", Pobs.Json.Str r.vfunc);
                           ("gang", Pobs.Json.Int r.gang_used);
                           ("verdict", Pobs.Json.Str (Psmt.Equiv.verdict_name r.verdict));
                           ("cases", Pobs.Json.Int (Psmt.Equiv.verdict_cases r.verdict));
                           ("ms", Pobs.Json.Float r.ms);
                           ( "detail",
                             Pobs.Json.Str
                               (match r.verdict with
                               | Psmt.Equiv.Proved { vacuous; _ } ->
                                   Fmt.str "%d vacuous" vacuous
                               | Psmt.Equiv.Bounded { reason; _ } -> reason
                               | Psmt.Equiv.Refuted { cx; _ } ->
                                   Fmt.str "%a" Psmt.Equiv.pp_counterexample cx) );
                         ])
                     results) ))
            sources
        in
        (match json with
        | None -> ()
        | Some path ->
            let doc =
              Pobs.Json.Obj
                [
                  ( "params",
                    Pobs.Json.Obj
                      [
                        ("gang", Pobs.Json.Int gang);
                        ("width", Pobs.Json.Int width);
                        ("extent", Pobs.Json.Int extent);
                        ("slack", Pobs.Json.Int slack);
                        ("timeout_cases", Pobs.Json.Int timeout_cases);
                        ("fuel", Pobs.Json.Int fuel);
                        ( "legalize",
                          match legalize with
                          | None -> Pobs.Json.Null
                          | Some l -> Pobs.Json.Int l );
                      ] );
                  ( "summary",
                    Pobs.Json.Obj
                      [
                        ("proved", Pobs.Json.Int !proved);
                        ("refuted", Pobs.Json.Int !refuted);
                        ("bounded", Pobs.Json.Int !bounded);
                      ] );
                  ("kernels", Pobs.Json.Obj docs);
                ]
            in
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc (Pobs.Json.to_string doc));
            Fmt.epr "wrote report to %s@." path);
        Fmt.pr "verify-kernel: %d proved, %d counterexamples, %d bounded out@."
          !proved !refuted !bounded;
        if !bounded > 0 then
          Fmt.epr "warning: %d verification(s) bounded out (no claim made)@." !bounded;
        if !refuted > 0 then exit 1)
  in
  Cmd.v
    (Cmd.info "verify-kernel"
       ~doc:
         "Bounded translation validation: symbolically execute the serial \
          SPMD reference and the vectorized kernel over small input domains \
          and prove them equivalent, or print a concrete lane-level \
          counterexample.  Exits non-zero on any counterexample; Bounded-out \
          verdicts are warnings.")
    Term.(
      const run $ obs_term $ opts_term $ files_arg $ suite $ gang $ width $ extent
      $ slack $ timeout_cases $ fuel $ legalize $ json)

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix socket at $(docv) (default /tmp/psimc.sock)")
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Listen on localhost TCP port $(docv) instead of a Unix socket")
  in
  let jobs =
    Arg.(
      value & opt int 2
      & info [ "jobs" ] ~docv:"N"
          ~doc:"Worker domains handling requests (1 = inline on the accept loop)")
  in
  let cache_capacity =
    Arg.(
      value & opt int 256
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Result-cache entries held before LRU eviction")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write a final metrics-registry snapshot to $(docv) on shutdown")
  in
  let run obs socket port jobs cache_capacity metrics_out =
    with_obs obs (fun () ->
        let addr =
          match (socket, port) with
          | Some p, None -> Pharness.Serve.Unix_path p
          | None, Some p -> Pharness.Serve.Tcp_port p
          | None, None -> Pharness.Serve.Unix_path "/tmp/psimc.sock"
          | Some _, Some _ ->
              Fmt.epr "psimc serve: pass --socket or --port, not both@.";
              exit 2
        in
        let cfg =
          {
            (Pharness.Serve.default_config addr) with
            jobs;
            cache_capacity;
            metrics_out;
            banner = true;
            handle_signals = true;
          }
        in
        let summary = Pharness.Serve.run cfg in
        Fmt.pr "%a" Pharness.Serve.pp_summary summary)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a persistent compile daemon: newline-framed JSON requests \
          (compile, lint, report, exec, profile, ping, metrics, shutdown) \
          over a Unix socket or localhost TCP, answered from a bounded \
          content-addressed result cache and fanned over a worker pool.  \
          Every response carries per-request span timings; the $(b,metrics) \
          verb scrapes the live registry (request latency p50/p90/p99, cache \
          hit/miss/eviction counters, process gauges).  Drains in-flight \
          work on $(b,shutdown), SIGTERM or SIGINT.")
    Term.(
      const run $ obs_term $ socket $ port $ jobs $ cache_capacity $ metrics_out)

let verify_rules_cmd =
  let exhaustive =
    Arg.(value & flag & info [ "exhaustive" ] ~doc:"Exhaustive 8-bit base enumeration")
  in
  let run exhaustive =
    Pobs.Logging.setup ();
    let reports = Psmt.Verify.check_all ~exhaustive () in
    List.iter (fun r -> Fmt.pr "%a@." Psmt.Verify.pp_report r) reports;
    if Psmt.Verify.all_ok reports then Fmt.pr "all rules verified@."
    else exit 1
  in
  Cmd.v
    (Cmd.info "verify-rules"
       ~doc:"Offline verification of the conditional shape-transformation rules")
    Term.(const run $ exhaustive)

let () =
  let doc = "Parsimony SPMD compiler (CGO'23 reproduction)" in
  let info = Cmd.info "psimc" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            build_cmd;
            ir_cmd;
            vec_cmd;
            shapes_cmd;
            report_cmd;
            autovec_cmd;
            run_cmd;
            exec_cmd;
            profile_cmd;
            lint_cmd;
            serve_cmd;
            fuzz_cmd;
            verify_kernel_cmd;
            verify_rules_cmd;
          ]))
