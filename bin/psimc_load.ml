(* psimc-load — load generator and SLO gate for the psimc serve daemon.

   Closed-loop clients drive a deterministic mixed workload (compile /
   lint / report over a repeating set of built-in kernels) against a
   running daemon (--socket/--port) or a self-hosted one (--self),
   print throughput and latency quantiles, optionally write the report
   as JSON, and exit non-zero when the run violates the requested SLO
   (error budget, minimum cache hit rate, p99 bound) or when the
   daemon's scraped cache counters fail to reconcile with the clients'
   own tallies. *)

open Cmdliner

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Connect to the daemon's Unix socket")

let port =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Connect to the daemon on localhost TCP")

let self =
  Arg.(
    value & flag
    & info [ "self" ]
        ~doc:
          "Spawn an in-process daemon on a temporary socket, load it, drain \
           it.  One-command benchmark mode.")

let jobs =
  Arg.(
    value & opt int 2
    & info [ "jobs" ] ~docv:"N" ~doc:"Daemon worker domains ($(b,--self) only)")

let cache_capacity =
  Arg.(
    value & opt int 256
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:"Daemon result-cache entries ($(b,--self) only)")

let clients =
  Arg.(
    value & opt int 2
    & info [ "clients" ] ~docv:"N" ~doc:"Concurrent closed-loop client connections")

let requests =
  Arg.(
    value & opt int 200
    & info [ "requests" ] ~docv:"N" ~doc:"Total requests across all clients")

let mix =
  Arg.(
    value
    & opt string "compile,lint,report"
    & info [ "mix" ] ~docv:"VERBS"
        ~doc:"Comma-separated verb mix, cycled per request")

let sources =
  Arg.(
    value & opt int 4
    & info [ "sources" ] ~docv:"N"
        ~doc:
          "Distinct built-in kernel sources to cycle through (smaller = more \
           cache-friendly)")

let json =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write the load report as JSON to $(docv)")

let slo_p99_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "slo-p99-ms" ] ~docv:"MS" ~doc:"Fail when client-side p99 exceeds $(docv)")

let min_hit_rate =
  Arg.(
    value
    & opt (some float) None
    & info [ "min-hit-rate" ] ~docv:"R"
        ~doc:"Fail when the cache hit rate falls below $(docv) (0..1)")

let max_errors =
  Arg.(
    value & opt int 0
    & info [ "max-errors" ] ~docv:"N" ~doc:"Fail when more than $(docv) requests error")

let shutdown =
  Arg.(
    value & flag
    & info [ "shutdown" ] ~doc:"Send a drain-and-stop request after the run")

let main socket port self jobs cache_capacity clients requests mix sources json
    slo_p99_ms min_hit_rate max_errors shutdown =
  Pobs.Logging.setup ();
  let verbs =
    String.split_on_char ',' mix |> List.map String.trim
    |> List.filter (fun v -> v <> "")
  in
  let spec =
    {
      Pharness.Loadgen.default_spec with
      clients;
      requests;
      verbs;
      sources = Pharness.Loadgen.default_sources sources;
      shutdown;
    }
  in
  let report =
    if self then begin
      let sock = Filename.temp_file "psimc-serve" ".sock" in
      let report, summary =
        Pharness.Loadgen.self_hosted ~jobs ~cache_capacity ~socket:sock spec
      in
      Fmt.pr "%a" Pharness.Serve.pp_summary summary;
      report
    end
    else begin
      let addr =
        match (socket, port) with
        | Some p, None -> Pharness.Serve.Unix_path p
        | None, Some p -> Pharness.Serve.Tcp_port p
        | None, None | Some _, Some _ ->
            Fmt.epr "psimc-load: pass exactly one of --socket, --port, --self@.";
            exit 2
      in
      Pharness.Loadgen.run addr spec
    end
  in
  Fmt.pr "%a" Pharness.Loadgen.pp_report report;
  (match json with
  | Some file ->
      Pobs.Json.write file (Pharness.Loadgen.report_to_json report);
      Fmt.epr "wrote report to %s@." file
  | None -> ());
  let slo = { Pharness.Loadgen.max_errors; min_hit_rate; max_p99_ms = slo_p99_ms } in
  match Pharness.Loadgen.check_slo slo report with
  | [] -> ()
  | violations ->
      List.iter (fun v -> Fmt.epr "SLO violation: %s@." v) violations;
      exit 1

let () =
  let doc = "Load generator and latency-SLO gate for the psimc serve daemon" in
  exit
    (Cmd.eval
       (Cmd.v
          (Cmd.info "psimc-load" ~version:"1.0" ~doc)
          Term.(
            const main $ socket $ port $ self $ jobs $ cache_capacity $ clients
            $ requests $ mix $ sources $ json $ slo_p99_ms $ min_hit_rate
            $ max_errors $ shutdown)))
