(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) on the simulated
   AVX-512 machine, then runs Bechamel micro-benchmarks of the compiler
   itself (pass time, shape analysis, rule verification, interpreter).

   Usage:
     dune exec bench/main.exe [--] [fast] [--jobs N] [--json FILE]
                                   [--trace FILE] [--history FILE]
                                   [--engine interp|vm]
     dune exec bench/main.exe -- diff BASELINE [CURRENT] [--engine E]
     dune exec bench/main.exe -- check --baseline FILE [--current FILE]
                                       [--tolerance PCT] [--engine E]
   - "fast" skips the Bechamel wall-clock section.
   - "--engine" selects the execution engine for the sweeps (default:
     the register VM).  The engine is recorded in the run document and
     [check]/[diff] refuse to compare runs across engines (exit 2).
   - "--jobs N" sets the worker-domain count for the figure sweeps
     (default: PARSIMONY_JOBS, else the runtime's recommendation capped
     at 8).  The tables are byte-identical for every N.
   - "--json FILE" writes the full run document to FILE: schema version,
     cost-model identifier, environment fingerprint, per-kernel cycles,
     geomeans, vectorization scorecards, rows, timings, remark counts
     and a metrics snapshot.
   - "--history FILE" appends the same document to FILE as one JSONL
     line (the regression observatory's store).
   - "--trace FILE" records every harness section and compiler pass as a
     span and writes a Chrome trace_event file (chrome://tracing).
   - "diff" compares two runs (a --json file, or the latest line of a
     JSONL history) and prints a ranked regression/improvement table.
     Without CURRENT it re-runs the figure sweep first.
   - "check" gates the current run against a baseline: exit 0 when every
     kernel's cycles are within tolerance (default 0.5%), 1 on any
     regression or vanished kernel, 2 on incompatible runs (different
     schema or cost model) or unreadable files.  On a cross-engine
     refusal both check and diff print which engine the baseline was
     recorded on, so the fix (matching --engine, or regenerating) is
     one line away.
   - "overhead" measures the wall-clock cost of profiling attribution
     on one kernel (EXPERIMENTS.md): main.exe overhead [--kernel K]
     [--iters N] [--engine E]. *)

let pr fmt = Fmt.pr fmt

let usage () =
  Fmt.epr
    "usage: main.exe [fast] [--jobs N] [--json FILE] [--trace FILE] \
     [--history FILE] [--engine interp|vm]@.       main.exe diff BASELINE \
     [CURRENT] [--engine E]@.       main.exe check --baseline FILE [--current \
     FILE] [--tolerance PCT] [--engine E]@.       main.exe overhead [--kernel \
     K] [--iters N] [--engine E]@.";
  exit 2

type cli = {
  fast : bool;
  jobs : int;
  json : string option;
  trace : string option;
  history : string option;
  engine : Pmachine.Engine.kind;
}

type cmd =
  | Run of cli
  | Diff of {
      baseline : string;
      current : string option;
      jobs : int;
      engine : Pmachine.Engine.kind;
    }
  | Check of {
      baseline : string option;
      current : string option;
      tolerance : float;
      jobs : int;
      engine : Pmachine.Engine.kind;
    }
  | Overhead of { kernel : string; iters : int; engine : Pmachine.Engine.kind }

let default_jobs () =
  (* a malformed PARSIMONY_JOBS raises; report it as a usage error *)
  try Pparallel.Pool.default_jobs ()
  with Invalid_argument msg ->
    Fmt.epr "%s@." msg;
    usage ()

let parse_engine s =
  match Pmachine.Engine.kind_of_string s with
  | Some k -> k
  | None ->
      Fmt.epr "--engine %s: expected one of %a@." s
        Fmt.(list ~sep:comma string)
        (List.map Pmachine.Engine.kind_to_string Pmachine.Engine.all_kinds);
      usage ()

let parse_jobs n =
  match int_of_string_opt n with
  | Some j when j >= 1 -> j
  | _ ->
      Fmt.epr "--jobs %s: expected a positive integer@." n;
      usage ()

let parse_run_cli args =
  let jobs = default_jobs () in
  let cli =
    ref
      {
        fast = false;
        jobs;
        json = None;
        trace = None;
        history = None;
        engine = Pmachine.Engine.Vm;
      }
  in
  let rec go = function
    | [] -> ()
    | "fast" :: rest ->
        cli := { !cli with fast = true };
        go rest
    | "--jobs" :: n :: rest ->
        cli := { !cli with jobs = parse_jobs n };
        go rest
    | "--json" :: file :: rest ->
        cli := { !cli with json = Some file };
        go rest
    | "--trace" :: file :: rest ->
        cli := { !cli with trace = Some file };
        go rest
    | "--history" :: file :: rest ->
        cli := { !cli with history = Some file };
        go rest
    | "--engine" :: e :: rest ->
        cli := { !cli with engine = parse_engine e };
        go rest
    | [ (("--jobs" | "--json" | "--trace" | "--history" | "--engine") as flag)
      ] ->
        Fmt.epr "%s requires a value@." flag;
        usage ()
    | arg :: _ ->
        Fmt.epr "unknown argument %S@." arg;
        usage ()
  in
  go args;
  (* fail on an unwritable --json target now, not after the sweep *)
  Option.iter
    (fun file ->
      try close_out (open_out file)
      with Sys_error msg ->
        Fmt.epr "--json %s: %s@." file msg;
        exit 2)
    !cli.json;
  !cli

let parse_check_cli args =
  let baseline = ref None
  and current = ref None
  and tolerance = ref 0.5
  and jobs = ref (default_jobs ())
  and engine = ref Pmachine.Engine.Vm in
  let rec go = function
    | [] -> ()
    | "--baseline" :: file :: rest ->
        baseline := Some file;
        go rest
    | "--current" :: file :: rest ->
        current := Some file;
        go rest
    | "--tolerance" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some t when t >= 0.0 ->
            tolerance := t;
            go rest
        | _ ->
            Fmt.epr "--tolerance %s: expected a non-negative percentage@." pct;
            usage ())
    | "--jobs" :: n :: rest ->
        jobs := parse_jobs n;
        go rest
    | "--engine" :: e :: rest ->
        engine := parse_engine e;
        go rest
    | [ (("--baseline" | "--current" | "--tolerance" | "--jobs" | "--engine")
        as flag) ] ->
        Fmt.epr "%s requires a value@." flag;
        usage ()
    | arg :: _ ->
        Fmt.epr "unknown argument %S@." arg;
        usage ()
  in
  go args;
  if !baseline = None then begin
    Fmt.epr "check requires --baseline FILE@.";
    usage ()
  end;
  Check
    {
      baseline = !baseline;
      current = !current;
      tolerance = !tolerance;
      jobs = !jobs;
      engine = !engine;
    }

let parse_diff_cli args =
  let rec split positional jobs engine = function
    | [] -> (List.rev positional, jobs, engine)
    | "--jobs" :: n :: rest -> split positional (parse_jobs n) engine rest
    | "--engine" :: e :: rest -> split positional jobs (parse_engine e) rest
    | [ (("--jobs" | "--engine") as flag) ] ->
        Fmt.epr "%s requires a value@." flag;
        usage ()
    | arg :: rest -> split (arg :: positional) jobs engine rest
  in
  match split [] (default_jobs ()) Pmachine.Engine.Vm args with
  | [ baseline ], jobs, engine -> Diff { baseline; current = None; jobs; engine }
  | [ baseline; current ], jobs, engine ->
      Diff { baseline; current = Some current; jobs; engine }
  | _ ->
      Fmt.epr "diff takes one or two run files@.";
      usage ()

let parse_overhead_cli args =
  let kernel = ref "mandelbrot"
  and iters = ref 200
  and engine = ref Pmachine.Engine.Vm in
  let rec go = function
    | [] -> ()
    | "--kernel" :: k :: rest ->
        kernel := k;
        go rest
    | "--iters" :: n :: rest -> (
        match int_of_string_opt n with
        | Some i when i >= 1 ->
            iters := i;
            go rest
        | _ ->
            Fmt.epr "--iters %s: expected a positive integer@." n;
            usage ())
    | "--engine" :: e :: rest ->
        engine := parse_engine e;
        go rest
    | [ (("--kernel" | "--iters" | "--engine") as flag) ] ->
        Fmt.epr "%s requires a value@." flag;
        usage ()
    | arg :: _ ->
        Fmt.epr "unknown argument %S@." arg;
        usage ()
  in
  go args;
  Overhead { kernel = !kernel; iters = !iters; engine = !engine }

let parse_cli () =
  match List.tl (Array.to_list Sys.argv) with
  | "diff" :: rest -> parse_diff_cli rest
  | "check" :: rest -> parse_check_cli rest
  | "overhead" :: rest -> parse_overhead_cli rest
  | "run" :: rest -> Run (parse_run_cli rest)
  | rest -> Run (parse_run_cli rest)

(* Wall-clock accounting per harness section, reported at the end and
   in the JSON output. *)
let timings : (string * float) list ref = ref []

let timed section f =
  let t0 = Unix.gettimeofday () in
  let r = Pobs.Trace.with_span ~cat:"harness" section f in
  timings := !timings @ [ (section, Unix.gettimeofday () -. t0) ];
  r

(* -- the run document (bench --json / history record) --

   The sweeps materialize raw per-(kernel, implementation) cycle tables
   (Figures.raw) and the printed figures are derived from them, so the
   observatory gates on the deterministic absolute cycles behind the
   ratio tables. *)

type sweep = {
  f4_raw : Pharness.Figures.raw list;
  f4 : Pharness.Figures.row list;
  f5_raw : Pharness.Figures.raw list;
  f5 : Pharness.Figures.row list;
  ab : Pharness.Figures.row list;
}

let machine_id () = Pmachine.Cost.model_id Pmachine.Cost.default

(* nan cycles (kernels with no hand implementation) are dropped rather
   than stored as null, so a diff never reports them as vanished *)
let kernels_of_raws f4_raw f5_raw : (string * (string * float) list) list =
  let finite r =
    List.filter (fun (_, c) -> Float.is_finite c) r.Pharness.Figures.rcycles
  in
  List.map (fun (r : Pharness.Figures.raw) -> ("fig4/" ^ r.rkernel, finite r)) f4_raw
  @ List.map
      (fun (r : Pharness.Figures.raw) -> ("fig5/" ^ r.rkernel, finite r))
      f5_raw

let flat_geomeans f4 f5 : (string * float) list =
  List.map (fun (s, g) -> ("figure4." ^ s, g)) (Pharness.Figures.geomeans f4)
  @ List.map (fun (s, g) -> ("figure5." ^ s, g)) (Pharness.Figures.geomeans f5)
  |> List.filter (fun (_, g) -> Float.is_finite g)

let run_figures pool ~engine =
  pr "Parsimony reproduction benchmark harness@.";
  pr "(simulated AVX-512-class machine; see lib/machine/cost.ml)@.";
  pr
    "(execution engine: %s — recorded in the run document; check/diff refuse \
     cross-engine comparisons)@."
    (Pmachine.Engine.kind_to_string engine);

  (* -- Figure 4 -- *)
  let f4_raw =
    timed "figure4" (fun () -> Pharness.Figures.figure4_raw ~pool ~engine ())
  in
  let f4 = Pharness.Figures.figure4_rows f4_raw in
  Pharness.Figures.pp_table Fmt.stdout
    ~title:"Figure 4: ispc benchmarks, speedup over LLVM auto-vectorization"
    ~unit:"speedup factor vs auto-vectorized serial C" f4;
  pr "summary: %s@." (Pharness.Figures.summary_figure4 f4);

  (* -- Figure 5 -- *)
  let f5_raw =
    timed "figure5" (fun () -> Pharness.Figures.figure5_raw ~pool ~engine ())
  in
  let f5 = Pharness.Figures.figure5_rows f5_raw in
  Pharness.Figures.pp_table Fmt.stdout
    ~title:
      "Figure 5: 72 Simd Library benchmarks, speedup over LLVM scalar \
       compilation"
    ~unit:"speedup factor vs scalar (vectorization disabled)" f5;
  pr "summary: %s@." (Pharness.Figures.summary_figure5 f5);

  (* -- code size (paper §6: 7x reduction) -- *)
  let cs = Pharness.Figures.code_size () in
  pr "@.== Code size: Parsimony source vs intrinsics-style implementation ==@.";
  pr "%-36s %12s %12s@." "kernel" "psim LoC" "hand instrs";
  List.iter
    (fun (n, p, h) ->
      match h with
      | Some h -> pr "%-36s %12d %12d@." n p h
      | None -> pr "%-36s %12d %12s@." n p "-")
    cs;
  pr "summary: %s@." (Pharness.Figures.summary_code_size cs);

  (* -- ablations (DESIGN.md design-choice index) -- *)
  let ab =
    timed "ablations" (fun () -> Pharness.Figures.ablations ~pool ~engine ())
  in
  Pharness.Figures.pp_table Fmt.stdout
    ~title:"Ablations: slowdown vs default Parsimony configuration"
    ~unit:"cycle ratio (>1 means the design choice matters)" ab;

  (* -- compile time (paper §4.2.2: online checks are cheap) -- *)
  pr "@.== Compile time ==@.%s@." (Pharness.Figures.compile_time_stats ());
  { f4_raw; f4; f5_raw; f5; ab }

(* Vectorization coverage scorecards, one per kernel (rolled up across
   the kernel's SPMD functions), for every Parsimony-ported kernel of
   both suites. *)
let scorecards pool : (string * Parsimony.Scorecard.t) list =
  let kernels =
    List.map (fun k -> ("fig5/", k)) Psimdlib.Registry.all
    @ List.map (fun k -> ("fig4/", k)) Pispc.Suite.all
  in
  Pparallel.Pool.map pool
    (fun (prefix, (k : Psimdlib.Workload.kernel)) ->
      Pharness.Runner.scorecard k
      |> Option.map (fun c -> (prefix ^ k.kname, c)))
    kernels
  |> List.filter_map Fun.id

(* Per-kernel hot-block digests: the top-N blocks by attributed cycles
   of each kernel's default Parsimony build, captured from a separate
   profiled pass on the sweep engine (the sweep runs themselves stay
   unprofiled, so the gated cycle numbers are untouched).  Stored with
   the run document so a regression diff can fingerprint *where* the
   cycles moved, not only by how much. *)
let hot_block_digests pool ~engine : (string * Pharness.Json_out.t) list =
  let kernels =
    List.map (fun k -> ("fig4/", k)) Pispc.Suite.all
    @ List.map (fun k -> ("fig5/", k)) Psimdlib.Registry.all
  in
  Pparallel.Pool.map pool
    (fun (prefix, (k : Psimdlib.Workload.kernel)) ->
      let r =
        Pharness.Runner.run ~engine ~profile:true k
          (Pharness.Runner.ParsimonyImpl Parsimony.Options.default)
      in
      let open Pharness.Json_out in
      match r.Pharness.Runner.profile with
      | None -> (prefix ^ k.kname, Arr [])
      | Some p ->
          let total = p.Pmachine.Profile.p_total_cycles in
          let top =
            List.filteri (fun i _ -> i < 3) p.Pmachine.Profile.p_blocks
          in
          ( prefix ^ k.kname,
            Arr
              (List.map
                 (fun (b : Pmachine.Profile.block) ->
                   Obj
                     [
                       ("func", Str b.pb_func);
                       ("block", Str b.pb_block);
                       ("cycles", Float b.pb_cycles);
                       ( "share",
                         Float
                           (if total > 0.0 then b.pb_cycles /. total else 0.0)
                       );
                     ])
                 top) ))
    kernels

(* -- Bechamel micro-benchmarks of the toolchain itself -- *)

let bechamel_benches () =
  let open Bechamel in
  let open Toolkit in
  let sample_kernel =
    List.find
      (fun (k : Psimdlib.Workload.kernel) -> k.kname = "gaussian_blur_3x3")
      Psimdlib.Registry.all
  in
  let compiled = Pfrontend.Lower.compile sample_kernel.psim_src in
  let spmd_func =
    List.find (fun f -> f.Pir.Func.spmd <> None) compiled.Pir.Func.funcs
  in
  let test_frontend =
    Test.make ~name:"frontend: parse+lower gaussian_blur_3x3"
      (Staged.stage (fun () ->
           ignore (Pfrontend.Lower.compile sample_kernel.psim_src)))
  in
  let test_shapes =
    Test.make ~name:"shape analysis (one SPMD function)"
      (Staged.stage (fun () -> ignore (Pshapes.Shapes.analyze spmd_func)))
  in
  let test_vectorize =
    Test.make ~name:"Parsimony pass (one SPMD function)"
      (Staged.stage (fun () ->
           ignore (Parsimony.Vectorizer.vectorize_func spmd_func)))
  in
  let test_rules =
    Test.make ~name:"offline rule verification (sampled)"
      (Staged.stage (fun () -> ignore (Psmt.Verify.check_all ())))
  in
  let test_interp =
    Test.make ~name:"simulator: one vectorized kernel execution"
      (Staged.stage (fun () ->
           ignore
             (Pharness.Runner.run sample_kernel
                (Pharness.Runner.ParsimonyImpl Parsimony.Options.default))))
  in
  let benchmark test =
    let instances = [ Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:30 ~quota:(Time.second 0.5) ~kde:None () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  pr "@.== Toolchain micro-benchmarks (Bechamel, wall clock) ==@.";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> pr "%-48s %12.1f ns/run@." name est
          | _ -> pr "%-48s (no estimate)@." name)
        results)
    [ test_frontend; test_shapes; test_vectorize; test_rules; test_interp ]

(* Per-(pass, kind) optimization-remark tallies collected in
   [Pobs.Remarks.Counts] mode during the figure sweeps; keys like
   "parsimony.passed".  Already sorted deterministically. *)
let remark_counts_json () =
  let open Pharness.Json_out in
  Obj
    (List.map
       (fun (pass, kind, n) ->
         (pass ^ "." ^ Pobs.Remarks.kind_name kind, Int n))
       (Pobs.Remarks.counts ()))

(* Aggregate recorded spans by name: count and total inclusive time.
   Only meaningful under --trace (empty object otherwise). *)
let spans_json () =
  let open Pharness.Json_out in
  let tally = Hashtbl.create 32 in
  List.iter
    (function
      | Pobs.Trace.Span s ->
          let c, t =
            Option.value ~default:(0, 0) (Hashtbl.find_opt tally s.name)
          in
          Hashtbl.replace tally s.name (c + 1, t + s.dur_us)
      | Pobs.Trace.Instant _ | Pobs.Trace.Counter _ -> ())
    (Pobs.Trace.events ());
  Hashtbl.fold (fun name (c, t) acc -> (name, c, t) :: acc) tally []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  |> List.map (fun (name, c, t) ->
         (name, Obj [ ("count", Int c); ("total_us", Int t) ]))
  |> fun fields -> Obj fields

(** The complete run document: everything the regression observatory
    needs to compare two runs, plus the figure rows and harness
    diagnostics.  [bench --json] writes it pretty-printed; [--history]
    appends it as one compact JSONL line. *)
let run_doc (sw : sweep) ~cards ~hot ~serve ~engine jobs : Pharness.Json_out.t =
  let open Pharness.Json_out in
  let hits, misses = Pharness.Runner.Compile_cache.stats () in
  Obj
    ((match serve with Some s -> [ ("serve", s) ] | None -> [])
    @ [
      ("schema", Int Pharness.History.schema_version);
      ("machine", Str (machine_id ()));
      ("engine", Str (Pmachine.Engine.kind_to_string engine));
      ("env", Pharness.History.env_json ());
      ("jobs", Int jobs);
      ( "kernels",
        Obj
          (List.map
             (fun (k, series) ->
               (k, Obj (List.map (fun (i, c) -> (i, Float c)) series)))
             (kernels_of_raws sw.f4_raw sw.f5_raw)) );
      ( "geomeans",
        Obj (List.map (fun (k, g) -> (k, Float g)) (flat_geomeans sw.f4 sw.f5))
      );
      ( "scorecards",
        Obj
          (List.map
             (fun (name, c) -> (name, Parsimony.Scorecard.to_json c))
             cards) );
      ("hot_blocks", Obj hot);
      ("figure4", of_rows sw.f4);
      ("figure5", of_rows sw.f5);
      ("ablations", of_rows sw.ab);
      ("timings_s", Obj (List.map (fun (s, dt) -> (s, Float dt)) !timings));
      ("compile_cache", Obj [ ("hits", Int hits); ("misses", Int misses) ]);
      ("remark_counts", remark_counts_json ());
      ("spans", spans_json ());
      ("metrics", Pobs.Metrics.snapshot ());
    ])

(* -- diff / check subcommands -- *)

let load_run file : Pharness.History.run =
  try Pharness.History.latest file with
  | Sys_error msg ->
      Fmt.epr "%s@." msg;
      exit 2
  | Pobs.Json.Parse_error msg ->
      Fmt.epr "%s: %s@." file msg;
      exit 2
  | Pharness.History.Incompatible msg ->
      Fmt.epr "%s: %s@." file msg;
      exit 2

(** Re-run the figure sweeps (quietly: no tables) to produce the current
    run record when no --current file is given. *)
let current_run ~jobs ~engine : Pharness.History.run =
  Fmt.epr "running current figure sweep (--jobs %d, engine %s)...@." jobs
    (Pmachine.Engine.kind_to_string engine);
  Pparallel.Pool.with_pool jobs (fun pool ->
      let f4_raw = Pharness.Figures.figure4_raw ~pool ~engine () in
      let f5_raw = Pharness.Figures.figure5_raw ~pool ~engine () in
      let f4 = Pharness.Figures.figure4_rows f4_raw in
      let f5 = Pharness.Figures.figure5_rows f5_raw in
      Pharness.History.make ~machine:(machine_id ())
        ~engine:(Pmachine.Engine.kind_to_string engine)
        ~jobs
        ~geomeans:(flat_geomeans f4 f5)
        (kernels_of_raws f4_raw f5_raw))

let resolve_current ~jobs ~engine = function
  | Some file -> load_run file
  | None -> current_run ~jobs ~engine

(* One-line pointer printed under an exit-2 refusal: which engine the
   baseline was recorded on, and what to pass to make the runs
   comparable. *)
let engine_hint (base : Pharness.History.run) (cur : Pharness.History.run) =
  if not (String.equal base.Pharness.History.engine cur.Pharness.History.engine)
  then
    Fmt.epr
      "note: the baseline was recorded on engine %S (current run: %S) — \
       re-run with --engine %s, or regenerate the baseline on %S@."
      base.Pharness.History.engine cur.Pharness.History.engine
      base.Pharness.History.engine cur.Pharness.History.engine

(* Fingerprint of the worst regression: where the current run spends
   its cycles, from the run document's hot_blocks digests (present when
   the current run came from a bench --json file; sweeps synthesized on
   the fly carry none). *)
let pp_hot_fingerprint (cur : Pharness.History.run) (d : Pharness.History.delta)
    =
  let open Pobs.Json in
  match member "hot_blocks" cur.Pharness.History.doc with
  | Some (Obj kernels) -> (
      match List.assoc_opt d.Pharness.History.d_kernel kernels with
      | Some (Arr (_ :: _ as rows)) ->
          Fmt.pr "hot blocks of %s (current run):@."
            d.Pharness.History.d_kernel;
          List.iter
            (fun row ->
              match
                ( member "func" row,
                  member "block" row,
                  member "cycles" row,
                  member "share" row )
              with
              | Some (Str f), Some (Str b), Some (Float c), Some (Float s) ->
                  Fmt.pr "  %s/%s  %.1f cycles (%.1f%%)@." f b c (s *. 100.0)
              | _ -> ())
            rows
      | _ -> ())
  | _ -> ()

let cmd_diff ~baseline ~current ~jobs ~engine =
  let base = load_run baseline in
  let cur = resolve_current ~jobs ~engine current in
  match Pharness.History.pp_diff Fmt.stdout base cur with
  | () ->
      (match
         List.filter
           (fun (d : Pharness.History.delta) -> d.d_ratio > 1.0)
           (Pharness.History.diff base cur)
       with
      | worst :: _ -> pp_hot_fingerprint cur worst
      | [] -> ());
      exit 0
  | exception Pharness.History.Incompatible msg ->
      Fmt.epr "%s@." msg;
      engine_hint base cur;
      exit 2

let cmd_check ~baseline ~current ~tolerance ~jobs ~engine =
  let base = load_run (Option.get baseline) in
  let cur = resolve_current ~jobs ~engine current in
  match Pharness.History.check ~tolerance_pct:tolerance base cur with
  | v ->
      Pharness.History.pp_verdict Fmt.stdout v;
      exit (Pharness.History.gate v)
  | exception Pharness.History.Incompatible msg ->
      Fmt.epr "%s@." msg;
      engine_hint base cur;
      exit 2

(* -- profiling-overhead measurement (EXPERIMENTS.md) --

   Pure execution cost of attribution: the kernel's default Parsimony
   build is compiled once, one engine instance is created per mode
   (bytecode compiled once, register frames pooled), and the entry
   point is executed --iters times with attribution off, then on.
   Wall clock only — the simulated cycle totals are identical in both
   modes by construction (the bench check gate pins that). *)
let cmd_overhead ~kernel ~iters ~engine =
  let all = Psimdlib.Registry.all @ Pispc.Suite.all in
  let k =
    match
      List.find_opt (fun (k : Psimdlib.Workload.kernel) -> k.kname = kernel) all
    with
    | Some k -> k
    | None ->
        Fmt.epr "unknown kernel %S (pick one from the fig4/fig5 suites)@."
          kernel;
        exit 2
  in
  let time profile =
    let m =
      Pharness.Runner.build_module k
        (Pharness.Runner.ParsimonyImpl Parsimony.Options.default)
    in
    let t = Pmachine.Engine.create ~kind:engine ~profile ~fuel:max_int m in
    let mem = Pmachine.Engine.mem t in
    let addrs =
      List.map
        (fun (b : Psimdlib.Workload.buffer) ->
          let esz = Pir.Types.scalar_bytes b.elem in
          let addr = Pmachine.Memory.alloc mem ((b.len * esz) + 64) in
          for i = 0 to b.len - 1 do
            Pmachine.Memory.store_scalar mem b.elem (addr + (i * esz)) (b.init i)
          done;
          addr)
        k.buffers
    in
    let args =
      List.map (fun a -> Pmachine.Value.I (Int64.of_int a)) addrs @ k.scalars
    in
    (* warm-up: builds bytecode / block caches and the frame pool *)
    ignore (Pmachine.Engine.run t k.kname args);
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Pmachine.Engine.run t k.kname args)
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int iters
  in
  let off = time false in
  let on_ = time true in
  pr "profiling overhead: %s, engine %s, %d iterations@." k.kname
    (Pmachine.Engine.kind_to_string engine)
    iters;
  pr "attribution off: %10.1f us/run@." (off *. 1e6);
  pr "attribution on:  %10.1f us/run (%+.1f%%)@." (on_ *. 1e6)
    ((on_ /. off -. 1.0) *. 100.0)

let cmd_run (cli : cli) =
  Pobs.Logging.setup ();
  Option.iter (fun _ -> Pobs.Trace.enable ()) cli.trace;
  (* Tally remarks (cheap Counts mode) and metrics only when a report
     will consume them; the default path stays instrumentation-free. *)
  let wants_doc = cli.json <> None || cli.history <> None in
  if wants_doc then begin
    Pobs.Remarks.set_mode Pobs.Remarks.Counts;
    Pobs.Metrics.enable ()
  end;
  let sw, cards, hot =
    Pparallel.Pool.with_pool cli.jobs (fun pool ->
        let sw =
          timed "figures_total" (fun () -> run_figures pool ~engine:cli.engine)
        in
        let cards =
          if wants_doc then timed "scorecards" (fun () -> scorecards pool)
          else []
        in
        let hot =
          if wants_doc then
            timed "hot_blocks" (fun () ->
                hot_block_digests pool ~engine:cli.engine)
          else []
        in
        (sw, cards, hot))
  in
  (* sustained serve throughput: an in-process daemon (2 worker
     domains, warm result cache) driven by 2 closed-loop clients; the
     report lands in the run document under "serve" *)
  let serve =
    if wants_doc then
      Some
        (timed "serve_bench" (fun () ->
             let socket = Filename.temp_file "psimc-serve-bench" ".sock" in
             let spec =
               {
                 Pharness.Loadgen.default_spec with
                 clients = 2;
                 requests = 240;
                 sources = Pharness.Loadgen.default_sources 4;
               }
             in
             let report, summary =
               Pharness.Loadgen.self_hosted ~jobs:2 ~cache_capacity:256 ~socket
                 spec
             in
             pr "@.== Serve daemon sustained throughput ==@.";
             pr "%a" Pharness.Loadgen.pp_report report;
             pr "%a" Pharness.Serve.pp_summary summary;
             Pharness.Loadgen.report_to_json report))
    else None
  in
  if not cli.fast then bechamel_benches ();
  pr "@.== Harness timings (wall clock, --jobs %d) ==@." cli.jobs;
  List.iter (fun (s, dt) -> pr "%-36s %9.3fs@." s dt) !timings;
  if wants_doc then begin
    let doc = run_doc sw ~cards ~hot ~serve ~engine:cli.engine cli.jobs in
    Option.iter
      (fun file ->
        Pharness.Json_out.write file doc;
        pr "wrote %s@." file)
      cli.json;
    Option.iter
      (fun file ->
        Pharness.History.append file doc;
        pr "appended run to %s@." file)
      cli.history
  end;
  Option.iter
    (fun file ->
      Pobs.Trace.write_chrome file;
      pr "wrote trace to %s@." file)
    cli.trace;
  pr "@.done.@."

let () =
  match parse_cli () with
  | Run cli -> cmd_run cli
  | Diff { baseline; current; jobs; engine } ->
      cmd_diff ~baseline ~current ~jobs ~engine
  | Check { baseline; current; tolerance; jobs; engine } ->
      cmd_check ~baseline ~current ~tolerance ~jobs ~engine
  | Overhead { kernel; iters; engine } -> cmd_overhead ~kernel ~iters ~engine
