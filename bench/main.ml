(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) on the simulated
   AVX-512 machine, then runs Bechamel micro-benchmarks of the compiler
   itself (pass time, shape analysis, rule verification, interpreter).

   Usage: dune exec bench/main.exe [--] [fast] [--jobs N] [--json FILE]
                                        [--trace FILE]
   - "fast" skips the Bechamel wall-clock section.
   - "--jobs N" sets the worker-domain count for the figure sweeps
     (default: PARSIMONY_JOBS, else the runtime's recommendation capped
     at 8).  The tables are byte-identical for every N.
   - "--json FILE" additionally writes rows, geomeans, harness
     wall-clock timings and optimization-remark counts to FILE as JSON.
   - "--trace FILE" records every harness section and compiler pass as a
     span and writes a Chrome trace_event file (chrome://tracing). *)

let pr fmt = Fmt.pr fmt

let usage () =
  Fmt.epr "usage: main.exe [fast] [--jobs N] [--json FILE] [--trace FILE]@.";
  exit 2

type cli = { fast : bool; jobs : int; json : string option; trace : string option }

let parse_cli () =
  let jobs =
    (* a malformed PARSIMONY_JOBS raises; report it as a usage error *)
    try Pparallel.Pool.default_jobs ()
    with Invalid_argument msg ->
      Fmt.epr "%s@." msg;
      usage ()
  in
  let cli = ref { fast = false; jobs; json = None; trace = None } in
  let rec go = function
    | [] -> ()
    | "fast" :: rest -> cli := { !cli with fast = true }; go rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> cli := { !cli with jobs = j }; go rest
        | _ ->
            Fmt.epr "--jobs %s: expected a positive integer@." n;
            usage ())
    | "--json" :: file :: rest -> cli := { !cli with json = Some file }; go rest
    | "--trace" :: file :: rest ->
        cli := { !cli with trace = Some file };
        go rest
    | [ (("--jobs" | "--json" | "--trace") as flag) ] ->
        Fmt.epr "%s requires a value@." flag;
        usage ()
    | arg :: _ ->
        Fmt.epr "unknown argument %S@." arg;
        usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  (* fail on an unwritable --json target now, not after the sweep *)
  Option.iter
    (fun file ->
      try close_out (open_out file)
      with Sys_error msg ->
        Fmt.epr "--json %s: %s@." file msg;
        exit 2)
    !cli.json;
  !cli

(* Wall-clock accounting per harness section, reported at the end and
   in the JSON output. *)
let timings : (string * float) list ref = ref []

let timed section f =
  let t0 = Unix.gettimeofday () in
  let r = Pobs.Trace.with_span ~cat:"harness" section f in
  timings := !timings @ [ (section, Unix.gettimeofday () -. t0) ];
  r

let run_figures pool =
  pr "Parsimony reproduction benchmark harness@.";
  pr "(simulated AVX-512-class machine; see lib/machine/cost.ml)@.";

  (* -- Figure 4 -- *)
  let f4 = timed "figure4" (fun () -> Pharness.Figures.figure4 ~pool ()) in
  Pharness.Figures.pp_table Fmt.stdout
    ~title:"Figure 4: ispc benchmarks, speedup over LLVM auto-vectorization"
    ~unit:"speedup factor vs auto-vectorized serial C" f4;
  pr "summary: %s@." (Pharness.Figures.summary_figure4 f4);

  (* -- Figure 5 -- *)
  let f5 = timed "figure5" (fun () -> Pharness.Figures.figure5 ~pool ()) in
  Pharness.Figures.pp_table Fmt.stdout
    ~title:
      "Figure 5: 72 Simd Library benchmarks, speedup over LLVM scalar \
       compilation"
    ~unit:"speedup factor vs scalar (vectorization disabled)" f5;
  pr "summary: %s@." (Pharness.Figures.summary_figure5 f5);

  (* -- code size (paper §6: 7x reduction) -- *)
  let cs = Pharness.Figures.code_size () in
  pr "@.== Code size: Parsimony source vs intrinsics-style implementation ==@.";
  pr "%-36s %12s %12s@." "kernel" "psim LoC" "hand instrs";
  List.iter
    (fun (n, p, h) ->
      match h with
      | Some h -> pr "%-36s %12d %12d@." n p h
      | None -> pr "%-36s %12d %12s@." n p "-")
    cs;
  pr "summary: %s@." (Pharness.Figures.summary_code_size cs);

  (* -- ablations (DESIGN.md design-choice index) -- *)
  let ab = timed "ablations" (fun () -> Pharness.Figures.ablations ~pool ()) in
  Pharness.Figures.pp_table Fmt.stdout
    ~title:"Ablations: slowdown vs default Parsimony configuration"
    ~unit:"cycle ratio (>1 means the design choice matters)" ab;

  (* -- compile time (paper §4.2.2: online checks are cheap) -- *)
  pr "@.== Compile time ==@.%s@." (Pharness.Figures.compile_time_stats ());
  (f4, f5, ab)

(* -- Bechamel micro-benchmarks of the toolchain itself -- *)

let bechamel_benches () =
  let open Bechamel in
  let open Toolkit in
  let sample_kernel =
    List.find
      (fun (k : Psimdlib.Workload.kernel) -> k.kname = "gaussian_blur_3x3")
      Psimdlib.Registry.all
  in
  let compiled = Pfrontend.Lower.compile sample_kernel.psim_src in
  let spmd_func =
    List.find (fun f -> f.Pir.Func.spmd <> None) compiled.Pir.Func.funcs
  in
  let test_frontend =
    Test.make ~name:"frontend: parse+lower gaussian_blur_3x3"
      (Staged.stage (fun () ->
           ignore (Pfrontend.Lower.compile sample_kernel.psim_src)))
  in
  let test_shapes =
    Test.make ~name:"shape analysis (one SPMD function)"
      (Staged.stage (fun () -> ignore (Pshapes.Shapes.analyze spmd_func)))
  in
  let test_vectorize =
    Test.make ~name:"Parsimony pass (one SPMD function)"
      (Staged.stage (fun () ->
           ignore (Parsimony.Vectorizer.vectorize_func spmd_func)))
  in
  let test_rules =
    Test.make ~name:"offline rule verification (sampled)"
      (Staged.stage (fun () -> ignore (Psmt.Verify.check_all ())))
  in
  let test_interp =
    Test.make ~name:"simulator: one vectorized kernel execution"
      (Staged.stage (fun () ->
           ignore
             (Pharness.Runner.run sample_kernel
                (Pharness.Runner.ParsimonyImpl Parsimony.Options.default))))
  in
  let benchmark test =
    let instances = [ Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:30 ~quota:(Time.second 0.5) ~kde:None () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  pr "@.== Toolchain micro-benchmarks (Bechamel, wall clock) ==@.";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> pr "%-48s %12.1f ns/run@." name est
          | _ -> pr "%-48s (no estimate)@." name)
        results)
    [ test_frontend; test_shapes; test_vectorize; test_rules; test_interp ]

(* Per-(pass, kind) optimization-remark tallies collected in
   [Pobs.Remarks.Counts] mode during the figure sweeps; keys like
   "parsimony.passed".  Already sorted deterministically. *)
let remark_counts_json () =
  let open Pharness.Json_out in
  Obj
    (List.map
       (fun (pass, kind, n) ->
         (pass ^ "." ^ Pobs.Remarks.kind_name kind, Int n))
       (Pobs.Remarks.counts ()))

(* Aggregate recorded spans by name: count and total inclusive time.
   Only meaningful under --trace (empty object otherwise). *)
let spans_json () =
  let open Pharness.Json_out in
  let tally = Hashtbl.create 32 in
  List.iter
    (function
      | Pobs.Trace.Span s ->
          let c, t =
            Option.value ~default:(0, 0) (Hashtbl.find_opt tally s.name)
          in
          Hashtbl.replace tally s.name (c + 1, t + s.dur_us)
      | Pobs.Trace.Instant _ | Pobs.Trace.Counter _ -> ())
    (Pobs.Trace.events ());
  Hashtbl.fold (fun name (c, t) acc -> (name, c, t) :: acc) tally []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  |> List.map (fun (name, c, t) ->
         (name, Obj [ ("count", Int c); ("total_us", Int t) ]))
  |> fun fields -> Obj fields

let emit_json file (f4, f5, ab) jobs =
  let open Pharness.Json_out in
  let hits, misses = Pharness.Runner.Compile_cache.stats () in
  let v =
    Obj
      [
        ("jobs", Int jobs);
        ("figure4", of_rows f4);
        ("figure5", of_rows f5);
        ("ablations", of_rows ab);
        ( "timings_s",
          Obj (List.map (fun (s, dt) -> (s, Float dt)) !timings) );
        ( "compile_cache",
          Obj [ ("hits", Int hits); ("misses", Int misses) ] );
        ("remark_counts", remark_counts_json ());
        ("spans", spans_json ());
      ]
  in
  write file v;
  pr "wrote %s@." file

let () =
  let cli = parse_cli () in
  Pobs.Logging.setup ();
  Option.iter (fun _ -> Pobs.Trace.enable ()) cli.trace;
  (* Tally remarks (cheap Counts mode, no text rendering) only when the
     JSON report will consume them; the default path stays remark-free. *)
  if cli.json <> None then Pobs.Remarks.set_mode Pobs.Remarks.Counts;
  let figs =
    Pparallel.Pool.with_pool cli.jobs (fun pool ->
        timed "figures_total" (fun () -> run_figures pool))
  in
  if not cli.fast then bechamel_benches ();
  pr "@.== Harness timings (wall clock, --jobs %d) ==@." cli.jobs;
  List.iter (fun (s, dt) -> pr "%-36s %9.3fs@." s dt) !timings;
  Option.iter (fun file -> emit_json file figs cli.jobs) cli.json;
  Option.iter
    (fun file ->
      Pobs.Trace.write_chrome file;
      pr "wrote trace to %s@." file)
    cli.trace;
  pr "@.done.@."
